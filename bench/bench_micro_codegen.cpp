// Real-machine microbenchmarks of the OpenCL C emitter (google-benchmark).
//
// The emitter sits on the compile hot path twice: once for the shipped
// .cl translation unit and once per DSE candidate whose CompileCache
// fingerprint falls back to a codegen run (pipelined kernels carry no
// schedule content key). ROADMAP item 4a asks for single-pass emission
// with no repeated name/type re-formatting; these benchmarks are the
// before/after evidence (numbers recorded in EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "codegen/opencl_codegen.hpp"
#include "ir/op_kernels.hpp"

namespace {

using namespace clflow;

/// A deep optimized conv (tiled + unrolled + weight cache): the largest
/// expression trees the emitter sees in practice.
ir::BuiltKernel MakeOptimizedConv() {
  return ir::BuildConv2dKernel(
      {.c1 = 64, .h1 = 28, .w1 = 28, .k = 64, .f = 3, .stride = 1,
       .has_bias = true, .activation = Activation::kRelu},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true,
       .tile_c1 = 8, .tile_w2 = 7, .weight_cache = true},
      "k_conv_bench");
}

/// A symbolic folded conv: stride arguments and symbolic bounds exercise
/// the variable-name formatting paths.
ir::BuiltKernel MakeSymbolicConv() {
  return ir::BuildConv2dKernel(
      {.f = 3, .stride = 2, .has_bias = true,
       .activation = Activation::kRelu},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true,
       .symbolic = true, .pin_strides = true},
      "k_conv_sym_bench");
}

void BM_EmitKernelOptimizedConv(benchmark::State& state) {
  const auto bk = MakeOptimizedConv();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string src = codegen::EmitKernel(bk.kernel);
    bytes = src.size();
    benchmark::DoNotOptimize(src.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_EmitKernelOptimizedConv)->Unit(benchmark::kMicrosecond);

void BM_EmitKernelSymbolicConv(benchmark::State& state) {
  const auto bk = MakeSymbolicConv();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string src = codegen::EmitKernel(bk.kernel);
    bytes = src.size();
    benchmark::DoNotOptimize(src.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_EmitKernelSymbolicConv)->Unit(benchmark::kMicrosecond);

void BM_EmitProgramPipeline(benchmark::State& state) {
  // A channelized three-stage pipeline: channel declarations plus
  // per-kernel emission, as GeneratedSource() runs it.
  auto c0 = ir::MakeBuffer("c0", {ir::IntImm(1)}, ir::MemScope::kChannel);
  auto c1 = ir::MakeBuffer("c1", {ir::IntImm(1)}, ir::MemScope::kChannel);
  c0->channel_depth = 1024;
  c1->channel_depth = 1024;
  auto head = ir::BuildConv2dKernel(
      {.c1 = 3, .h1 = 32, .w1 = 32, .k = 16, .f = 3, .stride = 1,
       .has_bias = true, .activation = Activation::kRelu},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true},
      "k_head", {.output = c0});
  auto mid = ir::BuildPoolKernel(
      {.c = 16, .h1 = 30, .w1 = 30, .f = 2, .stride = 2, .is_max = true},
      {.optimized = true}, "k_mid", {.input = c0, .output = c1});
  auto tail = ir::BuildDenseKernel(
      {.c1 = 16 * 15 * 15, .c2 = 10, .has_bias = true,
       .activation = Activation::kNone},
      {.cached_writes = true, .unroll_k = 8, .input_cache = true}, "k_tail",
      {.input = c1});
  const std::vector<const ir::Kernel*> kernels = {
      &head.kernel, &mid.kernel, &tail.kernel};
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string src = codegen::EmitProgram(kernels);
    bytes = src.size();
    benchmark::DoNotOptimize(src.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_EmitProgramPipeline)->Unit(benchmark::kMicrosecond);

/// Writes BENCH_micro_codegen.json: per-benchmark wall times under the
/// host-dependent `wall.` namespace (archived, never gated) and the
/// emitted source sizes as `codegen.<bench>.bytes` -- a deterministic
/// fingerprint of the emitter's output that CI gates tightly (a size
/// jump means the emitter started repeating itself or dropped code).
class SnapshotReporter : public benchmark::ConsoleReporter {
 public:
  explicit SnapshotReporter(bench::BenchSnapshot* snap) : snap_(snap) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      snap_->Metric("wall." + run.benchmark_name() + ".real_time",
                    run.GetAdjustedRealTime());
      for (const auto& [counter_name, counter] : run.counters) {
        if (counter_name == "bytes") {
          snap_->Metric("codegen." + run.benchmark_name() + ".bytes",
                        counter.value);
        }
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchSnapshot* snap_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchSnapshot snap("micro_codegen");
  SnapshotReporter reporter(&snap);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  snap.Write();
  benchmark::Shutdown();
  return 0;
}
