// Reproduces Table 6.8: per-operation GFLOPS and runtime share for the
// optimized folded MobileNetV1.
//
// Shape to reproduce: 1x1 convolutions carry ~94.8% of FP ops at the
// highest GFLOPS; depthwise convolutions run an order of magnitude
// slower; zero-FLOP padding is a double-digit share of runtime.
#include "bench_util.hpp"

using namespace clflow;

int main() {
  bench::Banner("MobileNetV1 per-operation profile", "Table 6.8");

  Rng rng(bench::kBenchSeed);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  const double total_flops = graph::GraphCost(net).flops;
  bench::BenchSnapshot json("tab6_8_mobilenet_ops");

  for (const auto& board : fpga::EvaluationBoards()) {
    auto d = bench::DeployFolded(net, core::FoldedMobileNet(board.key), board);
    if (!d.ok()) continue;
    std::printf("-- %s --\n", board.name.c_str());
    Table t({"Operation", "% of FP ops", "GFLOPS", "% of runtime"});
    for (const auto& e : d.ProfileOps()) {
      if (e.runtime_share < 0.002) continue;
      t.AddRow({e.op_class, Table::Pct(e.flops / total_flops, 1),
                Table::Num(e.gflops, 2), Table::Pct(e.runtime_share, 1)});
      const std::string prefix = board.key + "." + e.op_class;
      json.Metric(prefix + ".gflops", e.gflops);
      json.Metric(prefix + ".runtime_share", e.runtime_share);
    }
    t.Print();
    std::printf("\n");
  }
  json.Write();
  std::printf(
      "paper reference (S10SX): 1x1 conv 94.8%% of ops at 88.2 GFLOPS / "
      "30.2%% of time; 3x3 DW conv 1.72 GFLOPS / 44.5%%; pad 0 FLOPs / "
      "15.5%% of time.\n");
  return 0;
}
