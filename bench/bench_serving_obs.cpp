// Serving observability bench: pinned-seed load campaigns through a
// replica set, healthy and with one dead board (obs v2).
//
// Two serve::RunLoadCampaign runs drive the same 2-board pipelined LeNet
// deployment with the thesis seed: a healthy Poisson campaign at 70%
// target utilization, and a degraded one where board 1 hangs k_conv1 on
// every batch it is offered. Both campaigns run entirely on the simulated
// clock, so every latency quantile, goodput figure, and the per-request
// FNV digest are bit-stable across hosts and thread counts -- bench_diff
// gates the committed baseline with no ignores.
//
// The run also enforces the obs v2 histogram contract in situ: the
// campaign's log-bucketed serve.latency_us histogram must agree with the
// exact nearest-rank quantiles computed from the request records to
// within 1% relative error.
#include "bench_util.hpp"

#include <cmath>

#include "ha/replica_set.hpp"
#include "resilience/fault.hpp"
#include "serve/loadgen.hpp"
#include "serve/observatory.hpp"

using namespace clflow;

namespace {

constexpr int kRequests = 200;

core::DeployOptions Options() {
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineTvmAutorun();
  o.recipe.concurrent_execution = true;
  o.board = fpga::Stratix10SX();
  // A tight watchdog bounds hang-detection latency, which dominates the
  // degraded campaign's tail.
  o.runtime.watchdog_timeout = SimTime::Ms(2.0);
  return o;
}

ha::HaOptions HaOpts() {
  ha::HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 2;
  ha.cooldown_batches = 64;
  return ha;
}

/// Board 1 hangs k_conv1 on every invocation it will ever see.
std::shared_ptr<resilience::FaultInjector> DeadBoardPlan() {
  resilience::FaultPlan plan;
  plan.seed = bench::kBenchSeed;
  for (int i = 0; i < 64; ++i) {
    resilience::FaultSpec s;
    s.kind = resilience::FaultKind::kKernelHang;
    s.target = "k_conv1";
    s.index = i;
    plan.specs.push_back(s);
  }
  return std::make_shared<resilience::FaultInjector>(plan);
}

serve::LoadgenOptions Campaign() {
  serve::LoadgenOptions lo;
  lo.seed = bench::kBenchSeed;
  lo.requests = kRequests;
  lo.shape = serve::TraceShape::kPoisson;
  return lo;
}

/// Bucketed-vs-exact latency quantile drift, as max relative error over
/// p50/p99 -- the obs v2 acceptance gate (must stay under 1%).
double QuantileDrift(const serve::LoadgenReport& r) {
  const obs::LogHistogram lb =
      r.metrics->histogram("serve.latency_us").log_buckets();
  double drift = 0.0;
  for (const auto& [q, exact] : {std::pair{0.50, r.p50_us},
                                 std::pair{0.99, r.p99_us}}) {
    if (exact <= 0.0) continue;
    drift = std::max(drift, std::abs(lb.Quantile(q) - exact) / exact);
  }
  return drift;
}

void Record(bench::BenchSnapshot& json, const std::string& prefix,
            const serve::LoadgenReport& r) {
  json.Metric(prefix + ".p50_us", r.p50_us);
  json.Metric(prefix + ".p99_us", r.p99_us);
  json.Metric(prefix + ".mean_queue_delay_us", r.mean_queue_delay_us);
  json.Metric(prefix + ".goodput", r.goodput);
  json.Metric(prefix + ".achieved_rps", r.achieved_rps);
  json.Metric(prefix + ".peak_occupancy", r.peak_occupancy);
  json.Metric(prefix + ".failovers", static_cast<double>(r.failovers));
  json.Metric(prefix + ".errors", static_cast<double>(r.errors));
  // bench metrics are doubles; the low 32 digest bits are exactly
  // representable and change whenever the request schedule changes.
  json.Metric(prefix + ".digest32",
              static_cast<double>(r.digest & 0xffffffffULL));
}

}  // namespace

int main() {
  bench::Banner("Serving observability: load campaigns over a replica set",
                "serving observability (DESIGN.md section 17)");

  Rng rng(bench::kBenchSeed);
  graph::Graph lenet = nets::BuildLeNet5(rng);
  Tensor image = nets::SyntheticMnistImage(rng);

  // --- Healthy: both boards serve the Poisson trace -------------------------
  ha::ReplicaSet healthy(lenet, Options(), HaOpts());
  const serve::LoadgenReport h = RunLoadCampaign(healthy, image, Campaign());

  // --- Degraded: board 1 permanently dead -----------------------------------
  ha::ReplicaSet faulted(lenet, Options(), HaOpts());
  faulted.set_fault_injector(1, DeadBoardPlan());
  const serve::LoadgenReport f = RunLoadCampaign(faulted, image, Campaign());

  // --- Determinism: same seed, fresh replica set, same digest ---------------
  ha::ReplicaSet again(lenet, Options(), HaOpts());
  const serve::LoadgenReport h2 = RunLoadCampaign(again, image, Campaign());

  Table table({"Campaign", "Requests", "p50 us", "p99 us", "Goodput",
               "Achieved rps", "Failovers"});
  for (const auto& [label, r] :
       {std::pair<const char*, const serve::LoadgenReport*>{"healthy", &h},
        {"board 1 dead", &f}}) {
    table.AddRow({label, std::to_string(kRequests), Table::Num(r->p50_us, 1),
                  Table::Num(r->p99_us, 1), Table::Pct(r->goodput),
                  Table::Num(r->achieved_rps, 1),
                  std::to_string(r->failovers)});
  }
  table.Print();

  const double drift = std::max(QuantileDrift(h), QuantileDrift(f));
  std::printf(
      "\nbucketed-vs-exact latency quantile drift %.4f%% (bound < 1%%), "
      "digest %016llx (rerun %016llx)\n",
      drift * 100.0, static_cast<unsigned long long>(h.digest),
      static_cast<unsigned long long>(h2.digest));

  bench::BenchSnapshot json("serving_obs");
  json.Metric("requests", kRequests);
  Record(json, "healthy", h);
  Record(json, "faulted", f);
  json.Metric("quantile_drift", drift);
  json.Registry("serve_healthy", *h.metrics);
  json.Registry("serve_faulted", *f.metrics);
  json.Write();

  // Acceptance gates: reproducible schedules, bounded quantile drift, and
  // the degraded campaign must actually exercise failover.
  if (h.digest != h2.digest) {
    std::fprintf(stderr, "FAIL: same-seed campaigns diverged (%016llx vs "
                         "%016llx)\n",
                 static_cast<unsigned long long>(h.digest),
                 static_cast<unsigned long long>(h2.digest));
    return 1;
  }
  if (drift >= 0.01) {
    std::fprintf(stderr, "FAIL: quantile drift %.4f%% >= 1%%\n",
                 drift * 100.0);
    return 1;
  }
  if (f.failovers == 0) {
    std::fprintf(stderr,
                 "FAIL: dead-board campaign recorded no failovers\n");
    return 1;
  }
  if (h.goodput <= f.goodput) {
    std::fprintf(stderr,
                 "FAIL: degraded goodput %.3f not below healthy %.3f\n",
                 f.goodput, h.goodput);
    return 1;
  }
  return 0;
}
