// Ablation study over the design choices DESIGN.md section 6 calls out,
// on the folded MobileNetV1 deployment (Stratix 10 SX):
//
//   1. cached writes / fused activation (private accumulator vs global
//      scratchpad) -- the II 5 -> 1 transition;
//   2. stride pinning for symbolic kernels (Listing 5.11) -- LSU
//      coalescing for parameterized kernels;
//   3. tiling dimension choice at equal DSP budget (W2 vs C1 vs C2);
//   4. -fp-relaxed / -fpc float flags (SS4.10) -- area cost of strict FP;
//   5. parameterization itself (per-layer kernels vs grouped symbolic).
#include "bench_util.hpp"

using namespace clflow;

int main() {
  bench::Banner("Folded-execution ablations (MobileNetV1, S10SX)",
                "DESIGN.md section 6 / paper Ch. 4 choices");

  Rng rng(bench::kBenchSeed);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  Tensor image = nets::SyntheticImagenetImage(rng);
  const auto& board = fpga::Stratix10SX();
  bench::BenchSnapshot json("ablation_folded");

  auto report = [&](const char* label, core::Deployment& d) {
    if (!d.ok()) {
      std::printf("%-44s does not synthesize: %s\n", label,
                  d.bitstream().status_detail.c_str());
      return 0.0;
    }
    const double fps = d.EstimateFps(image);
    std::printf("%-44s %8.2f FPS   fmax %3.0f MHz  logic %2.0f%%  DSP %4lld\n",
                label, fps, d.bitstream().fmax_mhz,
                d.bitstream().totals.alut_frac * 100,
                static_cast<long long>(d.bitstream().totals.dsps));
    return fps;
  };

  // Reference: the full Table 6.7 configuration.
  auto full = bench::DeployFolded(net, core::FoldedMobileNet("s10sx"), board);
  const double full_fps = report("full optimization (7/16/4, pinned)", full);
  json.Metric("full_fps", full_fps);

  // 1. No cached writes / fusion: the naive per-layer baseline.
  {
    auto d = bench::DeployFolded(net, core::FoldedBase(), board);
    const double fps = report("no fusion/write caches (naive, II=5)", d);
    json.Metric("naive_fps", fps);
    if (fps > 0) {
      std::printf("    -> fused+cached accumulators are worth %.0fx\n",
                  full_fps / fps);
    }
  }

  // 2. Symbolic kernels without stride pinning.
  {
    auto recipe = core::FoldedMobileNet("s10sx");
    recipe.pin_strides = false;
    auto d = bench::DeployFolded(net, recipe, board);
    const double fps = report("symbolic kernels, strides NOT pinned", d);
    json.Metric("unpinned_fps", fps);
    if (fps > 0) {
      std::printf("    -> Listing 5.11 stride pinning is worth %.1fx\n",
                  full_fps / fps);
    }
  }

  // 3. Tiling dimension choice at a fixed 448-DSP budget for 1x1 convs.
  {
    std::printf("\ntiling-dimension choice at 448 MACs/cycle:\n");
    struct Cfg {
      const char* label;
      core::ConvTiling t;
    };
    for (const auto& cfg : std::initializer_list<Cfg>{
             {"  balanced   W2/C2/C1 = 7/8/8", {.c1 = 8, .w2 = 7, .c2 = 8}},
             {"  C1-heavy   W2/C2/C1 = 7/4/16", {.c1 = 16, .w2 = 7, .c2 = 4}},
             {"  C2-heavy   W2/C2/C1 = 7/16/4", {.c1 = 4, .w2 = 7, .c2 = 16}},
             {"  no W2 tile W2/C2/C1 = 1/16/28", {.c1 = 28, .w2 = 1, .c2 = 16}}}) {
      try {
        auto d = bench::DeployFolded(net, core::FoldedWithTiling(cfg.t),
                                     board);
        report(cfg.label, d);
      } catch (const std::exception&) {
        std::printf("%-44s rejected: tiling does not divide every layer\n",
                    cfg.label);
      }
    }
  }

  // 4. Strict IEEE float (no -fp-relaxed/-fpc).
  {
    auto recipe = core::FoldedMobileNet("s10sx");
    recipe.aoc.fp_relaxed = false;
    recipe.aoc.fpc = false;
    auto d = bench::DeployFolded(net, recipe, board);
    report("strict IEEE FP (no -fp-relaxed/-fpc)", d);
    if (d.ok() && full.ok()) {
      std::printf("    -> float flags save %.0f%% logic\n",
                  100.0 * (1.0 - full.bitstream().totals.alut_frac /
                                     d.bitstream().totals.alut_frac));
    }
  }

  // 5. Hybrid execution (SS6.5/SS8.1): pipeline the classifier tail.
  {
    auto recipe = core::FoldedMobileNet("s10sx");
    recipe.pipeline_tail = true;
    auto d = bench::DeployFolded(net, recipe, board);
    const double fps = report("hybrid: folded body + pipelined tail", d);
    json.Metric("hybrid_fps", fps);
    if (fps > 0 && full_fps > 0) {
      std::printf("    -> tail channels/autorun change FPS by %+.1f%%\n",
                  100.0 * (fps / full_fps - 1.0));
    }
  }

  // 6. Same schedules, but constant-shape kernels per layer (no grouping).
  {
    auto recipe = core::FoldedMobileNet("s10sx");
    recipe.parameterized = false;
    auto d = bench::DeployFolded(net, recipe, board);
    report("optimized schedules, per-layer kernels", d);
    if (d.ok()) {
      std::printf("    -> %zu kernels instead of %zu; the A10 variant:\n",
                  d.kernels().size(), full.kernels().size());
      auto recipe_a10 = core::FoldedMobileNet("a10");
      recipe_a10.parameterized = false;
      auto a10 = bench::DeployFolded(net, recipe_a10, fpga::Arria10());
      std::printf("       per-layer on A10: %s\n",
                  a10.ok() ? "fits (unexpected)"
                           : a10.bitstream().status_detail.c_str());
    }
  }
  json.Write();
  return 0;
}
