// Reproduces Tables 6.7 + 6.11 + 6.12 and Figure 6.5: MobileNetV1 folded
// deployment across boards and the comparison platforms.
//
// Shape to reproduce: the naive per-layer mapping does not synthesize on
// the Arria 10 and runs at ~0.2 FPS elsewhere; parameterized tiled kernels
// fit everywhere and improve throughput by two orders of magnitude; the
// best FPGA (S10SX) modestly beats TF-CPU (paper: 1.40x) but loses to the
// GPU; TVM scales near-linearly to ~16 threads.
#include "bench_util.hpp"

using namespace clflow;

int main() {
  bench::Banner("MobileNetV1 folded inference", "Tables 6.7/6.11/6.12, Fig 6.5");

  Rng rng(bench::kBenchSeed);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  Tensor image = nets::SyntheticImagenetImage(rng);
  const auto cost = graph::GraphCost(net);
  std::printf("CNN FP ops: %.2fG (paper 1.11G), parameters %.1fM (paper 4.2M)\n\n",
              cost.flops / 1e9, static_cast<double>(cost.params) / 1e6);

  // --- Table 6.7: parameterized kernels per board ----------------------------
  std::printf("parameterized kernels (Table 6.7):\n");
  for (const auto& board : fpga::EvaluationBoards()) {
    auto opt =
        bench::DeployFolded(net, core::FoldedMobileNet(board.key), board);
    std::printf("-- %s --\n", board.name.c_str());
    for (const auto& pk : opt.kernels()) {
      if (pk.tiling_desc.empty()) continue;
      std::printf("  %-16s %s\n", pk.op_class.c_str(),
                  pk.tiling_desc.c_str());
    }
  }

  // --- Table 6.11 ------------------------------------------------------------
  const double paper_base[] = {0.21, 0.17, -1};
  const double paper_opt[] = {17.7, 30.3, 18.0};
  std::printf("\nFPGA deployments (Table 6.11):\n");
  Table fpga_table({"Platform", "Base FPS", "Opt FPS", "GFLOPS", "Speedup",
                    "Logic", "BRAM", "DSP", "fmax"});
  bench::BenchSnapshot json("tab6_11_mobilenet_inference");
  std::vector<double> opt_fps;
  int b = 0;
  for (const auto& board : fpga::EvaluationBoards()) {
    auto base = bench::DeployFolded(net, core::FoldedBase(), board);
    auto opt =
        bench::DeployFolded(net, core::FoldedMobileNet(board.key), board);
    std::string base_cell = "na (does not fit)";
    double fps_b = 0;
    if (base.ok()) {
      fps_b = base.EstimateFps(image);
      base_cell = bench::WithPaper(fps_b, paper_base[b], 3);
      json.Metric(board.key + ".base_fps", fps_b);
    }
    const double fps_o = opt.EstimateFps(image);
    opt_fps.push_back(fps_o);
    json.Metric(board.key + ".opt_fps", fps_o);
    json.Metric(board.key + ".gflops", fps_o * cost.flops / 1e9);
    json.Metric(board.key + ".fmax_mhz", opt.bitstream().fmax_mhz);
    const auto& t = opt.bitstream().totals;
    fpga_table.AddRow(
        {board.name, base_cell, bench::WithPaper(fps_o, paper_opt[b], 1),
         Table::Num(fps_o * cost.flops / 1e9, 1),
         fps_b > 0 ? Table::Speedup(fps_o / fps_b, 0) : std::string("-"),
         Table::Pct(t.alut_frac), Table::Pct(t.bram_frac),
         Table::Pct(t.dsp_frac), Table::Num(opt.bitstream().fmax_mhz, 0)});
    ++b;
  }
  fpga_table.Print();

  // --- Table 6.12 ------------------------------------------------------------
  const double tf_cpu = perfmodel::TensorflowCpuFps(net);
  const double tvm_1t = perfmodel::TvmCpuFps(net, 1);
  const double tvm_16t = perfmodel::TvmCpuFps(net, 16);
  const double tf_gpu = perfmodel::TensorflowGpuFps(net);
  std::printf("\ncomparison (Table 6.12; FPGA ratio over platform):\n");
  Table cmp({"FPGA", "FPS", "vs TF-CPU (21.6)", "vs TVM-1T (15.6)",
             "vs TVM-16T", "vs TF-cuDNN (43.7)"});
  b = 0;
  for (const auto& board : fpga::EvaluationBoards()) {
    const double f = opt_fps[static_cast<std::size_t>(b)];
    cmp.AddRow({board.name, Table::Num(f, 1), Table::Speedup(f / tf_cpu),
                Table::Speedup(f / tvm_1t), Table::Speedup(f / tvm_16t),
                Table::Speedup(f / tf_gpu)});
    ++b;
  }
  cmp.Print();
  std::printf("paper ratios (S10SX row): 1.40x TF-CPU, 1.94x TVM-1T, "
              "0.69x TF-cuDNN\n");

  // --- Figure 6.5 series -------------------------------------------------------
  std::printf("\nTVM-nT thread sweep (Figure 6.5 series):\n");
  Table sweep({"Threads", "TVM FPS"});
  for (int threads : {1, 2, 4, 8, 16, 32, 56}) {
    sweep.AddRow({std::to_string(threads),
                  Table::Num(perfmodel::TvmCpuFps(net, threads), 1)});
  }
  sweep.Print();
  json.Metric("tf_cpu_fps", tf_cpu);
  json.Metric("tvm_16t_fps", tvm_16t);
  json.Metric("tf_gpu_fps", tf_gpu);
  json.Write();
  return 0;
}
