// Microbenchmark of the runtime's SoA EventPool against the AoS
// vector<ProfiledEvent> representation it replaced.
//
// The workload mirrors a steady-state serving loop -- the pattern
// BuildProfile and the HA layer drive: record one batch of events (a
// small, fixed label set, exactly what a compiled deployment produces),
// read them back once, clear, repeat. The AoS representation re-pays a
// heap-allocated label string per event every batch; the pool interns
// labels once and recycles slots, so steady state allocates nothing.
//
// Writes BENCH_micro_event_pool.json. CI gates `pool.speedup.steady`
// against the committed baseline (>= 1.5x is the claim this bench
// establishes); raw wall.* figures are host-dependent and never gated.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ocl/event_pool.hpp"

using namespace clflow;

namespace {

constexpr int kBatches = 2000;
constexpr int kEventsPerBatch = 64;
constexpr int kWarmupBatches = 50;

// A deployment-shaped label set. Runtime labels are the planner's
// "k_" + <grouping key> names (see deployment.cpp), e.g.
// "k_conv_c32f64k3s1p1_b1_a1_node4" -- 25-40 characters, past any
// small-string optimization, so the AoS path really heap-allocates a
// copy per recorded event exactly like Runtime::RecordEvent used to.
const std::vector<std::string>& Labels() {
  static const std::vector<std::string> labels = {
      "write input@ddr_bank0",
      "k_conv_c3f32k3s2p1_b1_a1_node1",
      "k_conv_dw_c32f32k3s1p1_b1_a1_node2",
      "k_conv_pw_c32f64k1s1p0_b1_a1_node3",
      "k_conv_dw_c64f64k3s2p1_b1_a1_node4",
      "k_conv_pw_c64f128k1s1p0_b1_a1_node5",
      "k_conv_dw_c128f128k3s1p1_b1_a1_node6",
      "k_conv_pw_c128f128k1s1p0_b1_a1_node7",
      "k_pool_avg_c1024w7_node8",
      "k_dense_c1024f1000_b1_a0_node9",
      "k_softmax_c1000_node10",
      "read logits@ddr_bank1",
  };
  return labels;
}

double AosSteadyUs(std::uint64_t* checksum) {
  const auto& labels = Labels();
  std::vector<ocl::ProfiledEvent> events;
  std::uint64_t sum = 0;
  auto run_batch = [&](int batch) {
    for (int i = 0; i < kEventsPerBatch; ++i) {
      ocl::ProfiledEvent ev;
      ev.label = labels[static_cast<std::size_t>(i) % labels.size()];
      ev.kind = ocl::CommandKind::kKernel;
      ev.queue = i % 4;
      ev.queued = SimTime::Us(batch);
      ev.start = SimTime::Us(batch + 1);
      ev.end = SimTime::Us(batch + 2);
      ev.stall = SimTime();
      ev.bytes = i;
      ev.trace_id = static_cast<std::uint64_t>(batch);
      ev.span_id = static_cast<std::uint64_t>(i);
      events.push_back(std::move(ev));
    }
    for (const auto& ev : events) {
      sum += static_cast<std::uint64_t>(ev.label.size()) +
             static_cast<std::uint64_t>(ev.bytes);
    }
    events.clear();
  };
  for (int b = 0; b < kWarmupBatches; ++b) run_batch(b);
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 0; b < kBatches; ++b) run_batch(b);
  const auto t1 = std::chrono::steady_clock::now();
  *checksum = sum;
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

double PoolSteadyUs(std::uint64_t* checksum) {
  const auto& labels = Labels();
  ocl::EventPool pool;
  std::uint64_t sum = 0;
  auto run_batch = [&](int batch) {
    for (int i = 0; i < kEventsPerBatch; ++i) {
      pool.Record(labels[static_cast<std::size_t>(i) % labels.size()],
                  ocl::CommandKind::kKernel, i % 4, SimTime::Us(batch),
                  SimTime::Us(batch + 1), SimTime::Us(batch + 2), SimTime(),
                  i, static_cast<std::uint64_t>(batch),
                  static_cast<std::uint64_t>(i), 0);
    }
    for (const auto ev : pool) {
      sum += static_cast<std::uint64_t>(ev.label.size()) +
             static_cast<std::uint64_t>(ev.bytes);
    }
    pool.Clear();
  };
  for (int b = 0; b < kWarmupBatches; ++b) run_batch(b);
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 0; b < kBatches; ++b) run_batch(b);
  const auto t1 = std::chrono::steady_clock::now();
  *checksum = sum;
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  bench::Banner("SoA event pool vs AoS event vector",
                "runtime event-recording hot path");

  // Per-rep pairing: measure both representations back-to-back inside
  // each rep (alternating which goes first) and gate on the median of
  // per-rep ratios. Pairing cancels the slow timing drift a shared/VM
  // host shows between invocations; independent medians do not.
  constexpr int kReps = 11;
  std::vector<double> aos_us, pool_us, ratios;
  std::uint64_t aos_sum = 0, pool_sum = 0;
  for (int r = 0; r < kReps; ++r) {
    double a = 0, p = 0;
    if (r % 2 == 0) {
      a = AosSteadyUs(&aos_sum);
      p = PoolSteadyUs(&pool_sum);
    } else {
      p = PoolSteadyUs(&pool_sum);
      a = AosSteadyUs(&aos_sum);
    }
    aos_us.push_back(a);
    pool_us.push_back(p);
    ratios.push_back(a / p);
  }
  if (aos_sum != pool_sum) {
    std::fprintf(stderr,
                 "CHECKSUM MISMATCH: aos %" PRIu64 " vs pool %" PRIu64
                 " -- the two paths read back different events\n",
                 aos_sum, pool_sum);
    return 1;
  }

  const double aos = MedianOf(aos_us);
  const double pool = MedianOf(pool_us);
  const double per_event_ns_aos =
      aos * 1e3 / (static_cast<double>(kBatches) * kEventsPerBatch);
  const double per_event_ns_pool =
      pool * 1e3 / (static_cast<double>(kBatches) * kEventsPerBatch);
  const double speedup = MedianOf(ratios);

  std::printf("%d batches x %d events, median of %d reps:\n", kBatches,
              kEventsPerBatch, kReps);
  std::printf("  AoS vector  %8.0f us  (%.1f ns/event)\n", aos,
              per_event_ns_aos);
  std::printf("  SoA pool    %8.0f us  (%.1f ns/event)\n", pool,
              per_event_ns_pool);
  std::printf("  speedup     %.2fx\n", speedup);

  ocl::EventPool probe;
  for (int i = 0; i < kEventsPerBatch; ++i) {
    probe.Record(Labels()[static_cast<std::size_t>(i) % Labels().size()],
                 ocl::CommandKind::kKernel, 0, SimTime(), SimTime(),
                 SimTime(), SimTime(), 0, 0, 0, 0);
  }
  std::printf("  pool after one batch: %zu slots, %zu distinct labels\n",
              probe.slots(), probe.distinct_labels());

  bench::BenchSnapshot json("micro_event_pool");
  json.Metric("pool.speedup.steady", speedup);
  json.Metric("pool.batch.events", kEventsPerBatch);
  json.Metric("pool.batch.distinct_labels",
              static_cast<double>(probe.distinct_labels()));
  json.Metric("wall.aos.steady_us", aos);
  json.Metric("wall.pool.steady_us", pool);
  json.Metric("wall.aos.per_event_ns", per_event_ns_aos);
  json.Metric("wall.pool.per_event_ns", per_event_ns_pool);
  json.Write();
  return 0;
}
