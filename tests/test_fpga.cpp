// Tests for the FPGA board specs and the AOC synthesis model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fpga/synth.hpp"
#include "ir/op_kernels.hpp"

namespace clflow::fpga {
namespace {

TEST(Board, EvaluationBoardsMatchTable61) {
  const auto& boards = EvaluationBoards();
  ASSERT_EQ(boards.size(), 3u);
  EXPECT_EQ(boards[0].key, "s10mx");
  EXPECT_EQ(boards[1].key, "s10sx");
  EXPECT_EQ(boards[2].key, "a10");

  // Table 6.2 resource totals.
  EXPECT_EQ(Arria10().dsps, 1518);
  EXPECT_EQ(Stratix10SX().dsps, 5760);
  EXPECT_EQ(Stratix10MX().dsps, 3960);
  EXPECT_EQ(Arria10().brams, 2336);
  EXPECT_EQ(Stratix10SX().brams, 11254);

  // The S10MX uses a single HBM pseudo-channel (12.8 GB/s), SS6.2.
  EXPECT_DOUBLE_EQ(Stratix10MX().ext_bw_gbps, 12.8);
  EXPECT_DOUBLE_EQ(Stratix10SX().ext_bw_gbps, 76.8);
  EXPECT_DOUBLE_EQ(Arria10().ext_bw_gbps, 34.1);
}

TEST(Board, StaticPartitionReducesUsable) {
  const auto& a10 = Arria10();
  EXPECT_LT(a10.usable_aluts(), a10.aluts);
  EXPECT_NEAR(static_cast<double>(a10.usable_aluts()),
              static_cast<double>(a10.aluts) * 0.85, 1.0);
}

TEST(Board, BytesPerCycleMatchesPaperExample) {
  // SS4.11: the A10's 34.1 GB/s at 250 MHz supports ~136.4 bytes/cycle.
  EXPECT_NEAR(Arria10().BytesPerCycle(250.0), 136.4, 0.1);
}

TEST(Board, LookupByKey) {
  EXPECT_EQ(BoardByKey("a10").name, "Arria 10 GX");
  EXPECT_THROW((void)BoardByKey("virtex"), Error);
}

// --- Synthesis ----------------------------------------------------------------

ir::BuiltKernel SmallConv(const ir::ConvSchedule& sched, std::int64_t c1 = 8,
                          std::int64_t k = 8) {
  return ir::BuildConv2dKernel(
      {.c1 = c1, .h1 = 16, .w1 = 16, .k = k, .f = 3, .stride = 1,
       .has_bias = true, .activation = Activation::kRelu},
      sched, "conv_synth");
}

Bitstream SynthOne(const ir::Kernel& k, const BoardSpec& board,
                   AocOptions opts = {}) {
  return Synthesize({{&k, {}}}, board, opts);
}

TEST(Synthesize, SmallKernelFitsEverywhere) {
  auto bk = SmallConv({.fuse_activation = true, .cached_writes = true,
                       .unroll_filter = true});
  for (const auto& board : EvaluationBoards()) {
    const auto bs = SynthOne(bk.kernel, board);
    EXPECT_TRUE(bs.ok()) << board.key << ": " << bs.status_detail;
    EXPECT_GT(bs.fmax_mhz, 100.0);
    EXPECT_LT(bs.fmax_mhz, board.base_fmax_mhz + 1);
    EXPECT_EQ(bs.kernels.size(), 1u);
  }
}

TEST(Synthesize, UnrollingMultipliesDsps) {
  auto base = SmallConv({.fuse_activation = true, .cached_writes = true});
  auto unrolled = SmallConv({.fuse_activation = true, .cached_writes = true,
                             .unroll_filter = true});
  const auto bs0 = SynthOne(base.kernel, Stratix10SX());
  const auto bs1 = SynthOne(unrolled.kernel, Stratix10SX());
  EXPECT_EQ(bs1.totals.dsps, bs0.totals.dsps * 9);
}

TEST(Synthesize, WithoutFpRelaxedAddersGoToLogic) {
  auto bk = SmallConv({.fuse_activation = true, .cached_writes = true,
                       .unroll_filter = true});
  const auto relaxed = SynthOne(bk.kernel, Stratix10SX(), {.fp_relaxed = true});
  const auto strict =
      SynthOne(bk.kernel, Stratix10SX(), {.fp_relaxed = false});
  EXPECT_GT(strict.totals.aluts, relaxed.totals.aluts);
}

TEST(Synthesize, FitFailureReportsResources) {
  // A massively tiled conv cannot fit the Arria 10's DSP budget.
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 256, .h1 = 56, .w1 = 56, .k = 256, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_c1 = 16,
       .tile_w2 = 8, .tile_c2 = 16},
      "huge");
  const auto bs = SynthOne(bk.kernel, Arria10());
  EXPECT_EQ(bs.status, SynthStatus::kFitError);
  EXPECT_NE(bs.status_detail.find("DSP"), std::string::npos);
  EXPECT_FALSE(bs.ok());
}

TEST(Synthesize, KernelDspConcentrationFailsRoutingOnS10) {
  // ~900 DSPs in one compute unit: routes on the A10 (degraded fmax),
  // fails on the Stratix 10 SX -- the paper's 7/16/8 observation (SS6.5).
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 64, .h1 = 56, .w1 = 56, .k = 64, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_c1 = 8,
       .tile_w2 = 7, .tile_c2 = 16},
      "fat1x1");
  const auto on_a10 = SynthOne(bk.kernel, Arria10());
  const auto on_s10 = SynthOne(bk.kernel, Stratix10SX());
  EXPECT_TRUE(on_a10.ok()) << on_a10.status_detail;
  EXPECT_LT(on_a10.fmax_mhz, Arria10().base_fmax_mhz * 0.8);
  EXPECT_EQ(on_s10.status, SynthStatus::kRouteError);
}

TEST(Synthesize, PressureLowersFmaxMonotonically) {
  double last_fmax = 1e9;
  for (std::int64_t tile_c2 : {1, 4, 8, 16}) {
    auto bk = ir::BuildConv2dKernel(
        {.c1 = 32, .h1 = 28, .w1 = 28, .k = 64, .f = 1, .stride = 1},
        {.fuse_activation = true, .cached_writes = true, .tile_c1 = 4,
         .tile_w2 = 7, .tile_c2 = tile_c2},
        "sweep");
    const auto bs = SynthOne(bk.kernel, Arria10());
    ASSERT_TRUE(bs.ok()) << bs.status_detail;
    EXPECT_LT(bs.fmax_mhz, last_fmax);
    last_fmax = bs.fmax_mhz;
  }
}

TEST(Synthesize, CachedLoadsCostBram) {
  // A dense kernel re-reads its input vector: cached LSU -> BRAM.
  auto with_reuse = ir::BuildDenseKernel({.c1 = 256, .c2 = 64},
                                         {.cached_writes = true}, "d1");
  auto staged = ir::BuildDenseKernel(
      {.c1 = 256, .c2 = 64}, {.cached_writes = true, .input_cache = true},
      "d2");
  const auto bs1 = SynthOne(with_reuse.kernel, Stratix10SX());
  const auto bs2 = SynthOne(staged.kernel, Stratix10SX());
  EXPECT_GT(bs1.totals.brams, 0);
  EXPECT_GT(bs2.totals.brams, 0);
}

TEST(Synthesize, ChannelsReduceLsuCount) {
  const ir::ConvSpec spec{.c1 = 4, .h1 = 12, .w1 = 12, .k = 4, .f = 3,
                          .stride = 1, .has_bias = true,
                          .activation = Activation::kRelu};
  const ir::ConvSchedule sched{.fuse_activation = true, .cached_writes = true,
                               .unroll_filter = true};
  auto global_io = ir::BuildConv2dKernel(spec, sched, "cg");
  auto cin = ir::MakeBuffer("ci", {ir::IntImm(1)}, ir::MemScope::kChannel);
  auto cout = ir::MakeBuffer("co", {ir::IntImm(1)}, ir::MemScope::kChannel);
  auto chan_io = ir::BuildConv2dKernel(spec, sched, "cc",
                                       {.input = cin, .output = cout});
  const auto bs_g = SynthOne(global_io.kernel, Stratix10SX());
  const auto bs_c = SynthOne(chan_io.kernel, Stratix10SX());
  EXPECT_LT(bs_c.kernels[0].lsu_count, bs_g.kernels[0].lsu_count);
}

// --- Timing -------------------------------------------------------------------

TEST(InvocationCycles, MemoryBoundKernelsChargeBandwidth) {
  ir::KernelStats stats;
  stats.compute_cycles = 1000;
  ir::AccessSite site;
  site.buffer = "x";
  site.elems_per_invocation = 1e6;  // 4 MB
  site.run_elems = 1024;            // fully sequential
  stats.accesses.push_back(site);
  // 4 MB at the S10MX's 12.8 GB/s single PC and 300 MHz:
  // bytes/cycle = 42.7 -> ~94K cycles, memory bound.
  const double cycles = InvocationCycles(stats, Stratix10MX(), 300.0);
  EXPECT_NEAR(cycles, 4e6 / (12.8e9 / 300e6), 1e3);
}

TEST(InvocationCycles, ShortRunsPayBurstPenalty) {
  ir::KernelStats stats;
  stats.compute_cycles = 1.0;
  ir::AccessSite site;
  site.elems_per_invocation = 1e5;
  site.run_elems = 1;  // random 4-byte accesses: 16x penalty at 64B bursts
  stats.accesses.push_back(site);
  const double penalized = InvocationCycles(stats, Stratix10SX(), 200.0);
  site.run_elems = 1024;
  stats.accesses[0] = site;
  const double clean = InvocationCycles(stats, Stratix10SX(), 200.0);
  EXPECT_NEAR(penalized / clean, 16.0, 0.01);
}

TEST(InvocationCycles, CachedSitesDiscountTraffic) {
  ir::KernelStats stats;
  stats.compute_cycles = 1.0;
  ir::AccessSite site;
  site.elems_per_invocation = 1e6;
  site.run_elems = 1024;
  stats.accesses.push_back(site);
  const double uncached = InvocationCycles(stats, Stratix10SX(), 200.0);
  stats.accesses[0].cached = true;
  const double cached = InvocationCycles(stats, Stratix10SX(), 200.0);
  CostModel m;
  EXPECT_NEAR(uncached / cached, m.cached_lsu_reuse, 0.01);
}

TEST(TransferTime, LatencyPlusBandwidth) {
  const auto& s10sx = Stratix10SX();
  const SimTime t0 = TransferTime(s10sx, 0, true);
  EXPECT_NEAR(t0.us(), s10sx.h2d_latency_us, 0.1);
  const SimTime t1 = TransferTime(s10sx, 11'000'000, true);  // ~1 ms at 11 GB/s
  EXPECT_NEAR(t1.us() - t0.us(), 1000.0, 1.0);
  // The S10MX's writes are far slower than its reads (Figure 6.2).
  const auto& s10mx = Stratix10MX();
  EXPECT_GT(TransferTime(s10mx, 1 << 20, true).us(),
            TransferTime(s10mx, 1 << 20, false).us());
}

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(SimTime::Us(1.0).ps(), 1'000'000);
  EXPECT_DOUBLE_EQ(SimTime::Ms(2.5).ms(), 2.5);
  EXPECT_NEAR(SimTime::Cycles(250, 250.0).us(), 1.0, 1e-9);
  EXPECT_LT(SimTime::Us(1), SimTime::Ms(1));
  EXPECT_EQ((SimTime::Us(1) + SimTime::Us(2)).us(), 3.0);
}

}  // namespace
}  // namespace clflow::fpga
