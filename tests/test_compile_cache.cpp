// Tests for the content-hashed compile/synthesis cache (DSE v2).
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "core/compile_cache.hpp"
#include "core/deployment.hpp"
#include "nets/nets.hpp"
#include "obs/metrics.hpp"

namespace clflow::core {
namespace {

class CompileCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    net_ = new graph::Graph(nets::BuildMobileNetV1(rng));
  }
  static void TearDownTestSuite() { delete net_; }

  [[nodiscard]] static DeployOptions Options(
      std::shared_ptr<CompileCache> cache) {
    DeployOptions dep;
    dep.mode = ExecutionMode::kFolded;
    dep.recipe = FoldedMobileNet("s10sx");
    dep.board = fpga::Stratix10SX();
    dep.compile_cache = std::move(cache);
    return dep;
  }

  static graph::Graph* net_;
};
graph::Graph* CompileCacheTest::net_ = nullptr;

TEST_F(CompileCacheTest, SecondIdenticalCompileSynthesizesNothing) {
  auto cache = std::make_shared<CompileCache>();
  auto first = Deployment::Compile(*net_, Options(cache));
  ASSERT_TRUE(first.ok());
  const CompileCacheStats warm = cache->stats();
  EXPECT_GT(warm.design_misses, 0);
  EXPECT_EQ(warm.design_hits, 0);

  auto second = Deployment::Compile(*net_, Options(cache));
  ASSERT_TRUE(second.ok());
  const CompileCacheStats delta = cache->stats().Since(warm);
  // Zero fpga::SynthesizeKernelDesign calls: every kernel design was a
  // cache hit, visible through the dse.cache.* gauge series.
  obs::Registry reg;
  cache->ExportMetrics(reg, "dse.cache.", warm);
  EXPECT_EQ(reg.gauge("dse.cache.design.misses").value(), 0.0);
  EXPECT_EQ(reg.gauge("dse.cache.design.hits").value(),
            static_cast<double>(second.kernels().size()));
  EXPECT_EQ(reg.gauge("dse.cache.hit_rate").value(), 1.0);
  EXPECT_EQ(delta.design_misses, 0);
  EXPECT_EQ(delta.misses(), 0);

  // The per-deployment telemetry counters tell the same story.
  EXPECT_EQ(second.telemetry().registry.counter("compile.cache.misses")
                .value(),
            0.0);
  EXPECT_EQ(second.telemetry().registry.counter("compile.cache.hits").value(),
            static_cast<double>(second.kernels().size()));
}

TEST_F(CompileCacheTest, CachedCompileMatchesUncached) {
  auto cache = std::make_shared<CompileCache>();
  auto cold = Deployment::Compile(*net_, Options(nullptr));
  auto warm1 = Deployment::Compile(*net_, Options(cache));
  auto warm2 = Deployment::Compile(*net_, Options(cache));  // all hits
  for (const auto* d : {&warm1, &warm2}) {
    ASSERT_EQ(d->bitstream().status, cold.bitstream().status);
    EXPECT_EQ(d->bitstream().fmax_mhz, cold.bitstream().fmax_mhz);
    EXPECT_EQ(d->bitstream().routing_pressure,
              cold.bitstream().routing_pressure);
    EXPECT_EQ(d->bitstream().totals.aluts, cold.bitstream().totals.aluts);
    EXPECT_EQ(d->bitstream().totals.dsps, cold.bitstream().totals.dsps);
    EXPECT_EQ(d->bitstream().totals.brams, cold.bitstream().totals.brams);
    ASSERT_EQ(d->bitstream().kernels.size(), cold.bitstream().kernels.size());
    for (std::size_t i = 0; i < cold.bitstream().kernels.size(); ++i) {
      const auto& a = d->bitstream().kernels[i];
      const auto& b = cold.bitstream().kernels[i];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.dsps, b.dsps);
      EXPECT_EQ(a.aluts, b.aluts);
      EXPECT_EQ(a.brams, b.brams);
      EXPECT_EQ(a.lsu_count, b.lsu_count);
      // Cached designs are re-pointed at the owning deployment's kernel.
      ASSERT_NE(a.kernel, nullptr);
      EXPECT_EQ(a.kernel->name, a.name);
    }
  }
  // And the deployment still runs.
  Tensor probe = Tensor::Full(Shape{1, 3, 224, 224}, 0.0f);
  EXPECT_EQ(warm2.EstimateFps(probe), cold.EstimateFps(probe));
}

TEST_F(CompileCacheTest, CostModelChangeInvalidatesByFingerprint) {
  auto cache = std::make_shared<CompileCache>();
  auto a = Deployment::Compile(*net_, Options(cache));
  const CompileCacheStats warm = cache->stats();

  DeployOptions dep = Options(cache);
  dep.cost_model.lsu_base_alut += 1;  // any model constant participates
  auto b = Deployment::Compile(*net_, dep);
  const CompileCacheStats delta = cache->stats().Since(warm);
  EXPECT_EQ(delta.design_hits, 0);
  EXPECT_EQ(delta.design_misses,
            static_cast<std::int64_t>(b.kernels().size()));
  // Entries under the old fingerprint are orphaned, never returned stale.
  EXPECT_GT(cache->stats().entries, warm.entries);
}

TEST_F(CompileCacheTest, AocFlagChangeInvalidatesByFingerprint) {
  auto cache = std::make_shared<CompileCache>();
  (void)Deployment::Compile(*net_, Options(cache));
  const CompileCacheStats warm = cache->stats();
  DeployOptions dep = Options(cache);
  dep.recipe.aoc.fp_relaxed = false;
  (void)Deployment::Compile(*net_, dep);
  EXPECT_EQ(cache->stats().Since(warm).design_hits, 0);
}

TEST_F(CompileCacheTest, BoardChangeReusesKernelDesigns) {
  // Per-kernel synthesis is board-independent by construction; only
  // AssembleBitstream (cheap) re-runs, so a board change is all hits.
  auto cache = std::make_shared<CompileCache>();
  auto sx = Deployment::Compile(*net_, Options(cache));
  const CompileCacheStats warm = cache->stats();
  DeployOptions dep = Options(cache);
  dep.board = fpga::Stratix10MX();
  auto mx = Deployment::Compile(*net_, dep);
  EXPECT_EQ(cache->stats().Since(warm).design_misses, 0);
  // The verdict can still differ per board (that is AssembleBitstream's
  // job), but per-kernel areas are identical.
  ASSERT_EQ(sx.bitstream().kernels.size(), mx.bitstream().kernels.size());
  for (std::size_t i = 0; i < sx.bitstream().kernels.size(); ++i) {
    EXPECT_EQ(sx.bitstream().kernels[i].aluts,
              mx.bitstream().kernels[i].aluts);
    EXPECT_EQ(sx.bitstream().kernels[i].dsps, mx.bitstream().kernels[i].dsps);
  }
}

TEST_F(CompileCacheTest, ClearDropsEntriesAndForcesRecompute) {
  auto cache = std::make_shared<CompileCache>();
  (void)Deployment::Compile(*net_, Options(cache));
  EXPECT_GT(cache->stats().entries, 0);
  EXPECT_GT(cache->stats().bytes, 0);
  cache->Clear();
  EXPECT_EQ(cache->stats().entries, 0);
  EXPECT_EQ(cache->stats().bytes, 0);
  const CompileCacheStats base = cache->stats();
  auto d = Deployment::Compile(*net_, Options(cache));
  EXPECT_EQ(cache->stats().Since(base).design_hits, 0);
  EXPECT_EQ(cache->stats().Since(base).design_misses,
            static_cast<std::int64_t>(d.kernels().size()));
}

TEST_F(CompileCacheTest, ConvKernelKeyCoversScheduleAndSpec) {
  ir::ConvSpec spec{.c1 = 32, .h1 = 56, .w1 = 56, .k = 64, .f = 1,
                    .stride = 1, .depthwise = false, .has_bias = true,
                    .activation = Activation::kRelu};
  ir::ConvSchedule sched;
  sched.tile_c1 = 4;
  sched.tile_w2 = 7;
  sched.tile_c2 = 8;
  const std::string base = CompileCache::ConvKernelKey(spec, sched, "k");
  auto differs = [&](auto&& mutate) {
    ir::ConvSpec s2 = spec;
    ir::ConvSchedule c2 = sched;
    mutate(s2, c2);
    return CompileCache::ConvKernelKey(s2, c2, "k") != base;
  };
  EXPECT_TRUE(differs([](auto& s, auto&) { s.stride = 2; }));
  EXPECT_TRUE(differs([](auto& s, auto&) { s.depthwise = true; }));
  EXPECT_TRUE(differs([](auto&, auto& c) { c.tile_c2 = 16; }));
  EXPECT_TRUE(differs([](auto&, auto& c) { c.unroll_filter = true; }));
  EXPECT_TRUE(differs([](auto&, auto& c) { c.symbolic = true; }));
  EXPECT_NE(CompileCache::ConvKernelKey(spec, sched, "other"), base);
}

TEST_F(CompileCacheTest, ConcurrentCompilesShareOneCache) {
  // Eight concurrent Deployment::Compile calls against one cache: the
  // sanitizer CI config (CLFLOW_SANITIZE=thread) runs this to catch data
  // races in the cache and the obs/diagnostics plumbing.
  auto cache = std::make_shared<CompileCache>();
  std::vector<double> fmax(8, 0.0);
  ParallelFor(0, 8, 8, [&](std::int64_t i) {
    auto d = Deployment::Compile(*net_, Options(cache));
    fmax[static_cast<std::size_t>(i)] = d.bitstream().fmax_mhz;
  });
  for (double f : fmax) EXPECT_EQ(f, fmax[0]);
  EXPECT_GT(fmax[0], 0.0);
  // Racing misses may duplicate work but never corrupt the entry count.
  EXPECT_GT(cache->stats().design_hits, 0);
}

}  // namespace
}  // namespace clflow::core
