// Tests for the profiler layer: the attribution conservation invariant
// on real deployments, bottleneck classification, fmax-droop showing up
// as CLF601 drift, the CLF602/CLF603 invariant diagnostics, report
// generation, and the bench-snapshot diff semantics bench_diff gates CI
// with.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "nets/nets.hpp"
#include "obs/json.hpp"
#include "prof/bench_compare.hpp"
#include "prof/prof.hpp"
#include "prof/report.hpp"
#include "resilience/fault.hpp"

namespace clflow {
namespace {

core::Deployment CompileFoldedLenet() {
  Rng rng(7);
  graph::Graph lenet = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kFolded;
  o.recipe = core::FoldedBase();
  o.board = fpga::Stratix10SX();
  return core::Deployment::Compile(lenet, o);
}

core::Deployment CompilePipelinedLenet() {
  Rng rng(7);
  graph::Graph lenet = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineTvmAutorun();
  o.recipe.concurrent_execution = true;
  o.board = fpga::Stratix10SX();
  return core::Deployment::Compile(lenet, o);
}

Tensor LenetImage() {
  Rng rng(8);
  return nets::SyntheticMnistImage(rng);
}

// ------------------------------------------------- attribution invariants

TEST(Prof, FoldedLenetAttributionConserves) {
  auto d = CompileFoldedLenet();
  ASSERT_TRUE(d.ok());
  const prof::Profile p = prof::BuildProfile(d, LenetImage());

  EXPECT_EQ(p.unmatched_events, 0u);
  EXPECT_LT(p.conservation_error_us, 1e-6);
  ASSERT_FALSE(p.events.empty());
  for (const auto& e : p.events) {
    // The decomposition sums to the event duration exactly, each term
    // nonnegative.
    EXPECT_NEAR(e.compute_us + e.memory_us + e.fmax_us, e.duration_us, 1e-9)
        << e.kernel;
    EXPECT_GE(e.compute_us, 0.0);
    EXPECT_GE(e.memory_us, 0.0);
    EXPECT_GE(e.fmax_us, 0.0);
  }

  // Per-kernel aggregates conserve too, and shares sum to one.
  double share = 0.0;
  for (const auto& k : p.kernels) {
    EXPECT_NEAR(k.compute_us + k.memory_us + k.fmax_us, k.total_us, 1e-6)
        << k.name;
    share += k.share;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);

  // Makespan-level conservation: per queue, busy + idle == the batch
  // makespan (where transfers and launch overhead live).
  ASSERT_FALSE(p.queues.empty());
  for (const auto& q : p.queues) {
    EXPECT_NEAR(q.busy_us + q.idle_us, p.makespan_us, 1e-3)
        << "queue " << q.queue;
  }
}

TEST(Prof, FoldedLenetMatchesSynthesisModelAtBitstreamClock) {
  auto d = CompileFoldedLenet();
  ASSERT_TRUE(d.ok());
  const prof::Profile p = prof::BuildProfile(d, LenetImage());
  // The simulated runtime uses the same cost model the profiler predicts
  // with, so a fault-free run has ~zero drift everywhere.
  for (const auto& k : p.kernels) {
    EXPECT_LT(std::abs(k.drift), 1e-6) << k.name;
  }
  // And the achieved clock is below the base clock, so part of every
  // compute-bound launch is attributed to fmax, never negative.
  EXPECT_LE(p.fmax_mhz, p.base_fmax_mhz);
}

TEST(Prof, PipelinedLenetSeesChannelStalls) {
  auto d = CompilePipelinedLenet();
  ASSERT_TRUE(d.ok());
  const prof::Profile p = prof::BuildProfile(d, LenetImage());
  EXPECT_EQ(p.unmatched_events, 0u);

  double stall = 0.0;
  for (const auto& k : p.kernels) stall += k.stall_us;
  EXPECT_GT(stall, 0.0);  // downstream kernels block on channel producers

  bool stall_slice = false;
  for (const auto& s : p.timeline) {
    if (s.kind == "stall") stall_slice = true;
  }
  EXPECT_TRUE(stall_slice);
  // Transfers were profiled alongside the kernels.
  EXPECT_GT(p.write_us, 0.0);
  EXPECT_GT(p.read_us, 0.0);
}

TEST(Prof, RooflineUsesBoardCeilings) {
  auto d = CompileFoldedLenet();
  ASSERT_TRUE(d.ok());
  const prof::Profile p = prof::BuildProfile(d, LenetImage());
  const auto& board = fpga::Stratix10SX();
  EXPECT_NEAR(p.peak_gflops,
              2.0 * static_cast<double>(board.dsps) * p.fmax_mhz / 1e3,
              1e-6);
  for (const auto& k : p.kernels) {
    EXPECT_NEAR(k.roof_gflops,
                std::min(p.peak_gflops, k.intensity * board.ext_bw_gbps),
                1e-9)
        << k.name;
    // Achieved throughput can never beat its own roof.
    EXPECT_LE(k.achieved_gflops, k.roof_gflops + 1e-9) << k.name;
  }
}

// ------------------------------------------------------ drift diagnostics

TEST(Prof, FmaxDroopTriggersDriftDiagnostic) {
  auto d = CompileFoldedLenet();
  ASSERT_TRUE(d.ok());

  // Clean run first: no CLF601.
  {
    const prof::Profile p = prof::BuildProfile(d, LenetImage());
    analysis::DiagnosticEngine diags;
    prof::EmitDiagnostics(p, diags);
    EXPECT_TRUE(diags.ByCode("CLF601").empty());
    EXPECT_TRUE(diags.ByCode("CLF602").empty());
  }

  // Thermal droop to 0.8x: kernels run ~25% longer than the synthesis
  // model predicts at the bitstream clock.
  resilience::FaultPlan plan;
  plan.specs.push_back(resilience::ParseFaultSpec("fmax-droop:0.8"));
  auto injector = std::make_shared<resilience::FaultInjector>(plan);
  d.runtime().set_fault_injector(injector);

  const prof::Profile p = prof::BuildProfile(d, LenetImage());
  ASSERT_FALSE(p.kernels.empty());
  bool drifted = false;
  for (const auto& k : p.kernels) {
    if (k.drift > 0.10) drifted = true;
  }
  EXPECT_TRUE(drifted);

  analysis::DiagnosticEngine diags;
  prof::EmitDiagnostics(p, diags);
  const auto clf601 = diags.ByCode("CLF601");
  ASSERT_FALSE(clf601.empty());
  EXPECT_EQ(clf601[0].severity, analysis::Severity::kWarning);
  EXPECT_FALSE(clf601[0].location.kernel.empty());
  // The droop is a runtime effect the event stream still matches, so the
  // conservation invariant holds: no CLF602.
  EXPECT_TRUE(diags.ByCode("CLF602").empty());
}

TEST(Prof, BrokenInvariantRaisesClf602) {
  prof::Profile p;
  p.makespan_us = 100.0;
  p.unmatched_events = 3;
  analysis::DiagnosticEngine diags;
  prof::EmitDiagnostics(p, diags);
  const auto clf602 = diags.ByCode("CLF602");
  ASSERT_EQ(clf602.size(), 1u);
  EXPECT_EQ(clf602[0].severity, analysis::Severity::kError);
}

TEST(Prof, OverheadDominatedMakespanRaisesClf603) {
  prof::Profile p;
  p.makespan_us = 100.0;
  p.kernels.emplace_back();
  prof::QueueProfile q;
  q.queue = 0;
  q.busy_us = 20.0;
  q.idle_us = 80.0;
  p.queues.push_back(q);
  analysis::DiagnosticEngine diags;
  prof::EmitDiagnostics(p, diags);
  EXPECT_EQ(diags.ByCode("CLF603").size(), 1u);

  // Raising the threshold above the idle fraction silences it.
  analysis::DiagnosticEngine lax;
  prof::ProfileOptions opts;
  opts.overhead_fraction = 0.90;
  prof::EmitDiagnostics(p, lax, opts);
  EXPECT_TRUE(lax.ByCode("CLF603").empty());
}

// ---------------------------------------------------------------- reports

TEST(Prof, ReportsRenderInAllFormats) {
  auto d = CompileFoldedLenet();
  ASSERT_TRUE(d.ok());
  const prof::Profile p = prof::BuildProfile(d, LenetImage());

  const std::string text = prof::ToText(p);
  EXPECT_NE(text.find("Bottleneck"), std::string::npos);
  EXPECT_NE(text.find(p.kernels[0].name), std::string::npos);

  const auto parsed = obs::json::Parse(prof::ToJson(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("net")->str, "lenet5");
  ASSERT_EQ(parsed->Find("kernels")->array.size(), p.kernels.size());
  EXPECT_NE(parsed->Find("kernels")->array[0].Find("bottleneck"), nullptr);

  const std::string html = prof::ToHtml(p);
  EXPECT_NE(html.find("<svg"), std::string::npos);   // embedded timeline
  EXPECT_NE(html.find("<style"), std::string::npos); // self-contained
  // No external assets: nothing fetched by script/link/src (the SVG
  // xmlns attribute is a namespace identifier, not a fetch).
  EXPECT_EQ(html.find("<script src"), std::string::npos);
  EXPECT_EQ(html.find("<link "), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
}

// ------------------------------------------------------------- bench diff

prof::BenchSnapshot Snap(std::map<std::string, double> metrics) {
  prof::BenchSnapshot s;
  s.bench = "t";
  s.metrics = std::move(metrics);
  return s;
}

TEST(BenchDiff, ParseRoundTrip) {
  const auto s = prof::ParseBenchSnapshot(
      "{\"bench\":\"lenet\",\"git_describe\":\"v1-3-gabc\","
      "\"metrics\":{\"s10sx.opt_fps\":4917.5,\"a10.opt_fps\":2653},"
      "\"registries\":{}}");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->bench, "lenet");
  EXPECT_EQ(s->git_describe, "v1-3-gabc");
  ASSERT_EQ(s->metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(s->metrics.at("s10sx.opt_fps"), 4917.5);
}

TEST(BenchDiff, ParseRejectsMalformed) {
  EXPECT_FALSE(prof::ParseBenchSnapshot("not json").has_value());
  EXPECT_FALSE(prof::ParseBenchSnapshot("{\"metrics\":{}}").has_value());
  EXPECT_FALSE(prof::ParseBenchSnapshot("{\"bench\":\"x\"}").has_value());
  EXPECT_FALSE(
      prof::ParseBenchSnapshot(
          "{\"bench\":\"x\",\"metrics\":{\"k\":\"string\"}}")
          .has_value());
}

TEST(BenchDiff, IdenticalSnapshotsAreClean) {
  const auto base = Snap({{"fps", 100.0}, {"wall_us", 50.0}});
  const auto r = prof::DiffSnapshots(base, base);
  EXPECT_FALSE(r.regressed);
  for (const auto& d : r.deltas) {
    EXPECT_EQ(d.status, prof::MetricStatus::kOk) << d.key;
  }
}

TEST(BenchDiff, TwentyPercentFpsDropRegresses) {
  const auto r = prof::DiffSnapshots(Snap({{"s10sx.opt_fps", 100.0}}),
                                     Snap({{"s10sx.opt_fps", 80.0}}));
  EXPECT_TRUE(r.regressed);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].status, prof::MetricStatus::kRegressed);
  EXPECT_NEAR(r.deltas[0].rel_change, -0.20, 1e-9);
}

TEST(BenchDiff, DirectionHeuristics) {
  // fps up = improvement, not a regression.
  EXPECT_FALSE(prof::DiffSnapshots(Snap({{"fps", 100.0}}),
                                   Snap({{"fps", 150.0}}))
                   .regressed);
  // _us down = improvement; _us up = regression.
  EXPECT_FALSE(prof::DiffSnapshots(Snap({{"lat_us", 100.0}}),
                                   Snap({{"lat_us", 50.0}}))
                   .regressed);
  EXPECT_TRUE(prof::DiffSnapshots(Snap({{"lat_us", 100.0}}),
                                  Snap({{"lat_us", 120.0}}))
                  .regressed);
  // Unclassified keys are two-sided.
  EXPECT_TRUE(prof::DiffSnapshots(Snap({{"dsp_frac", 0.5}}),
                                  Snap({{"dsp_frac", 0.6}}))
                  .regressed);
}

TEST(BenchDiff, MissingMetricRegressesNewDoesNot) {
  const auto r = prof::DiffSnapshots(Snap({{"a", 1.0}, {"b", 2.0}}),
                                     Snap({{"b", 2.0}, {"c", 3.0}}));
  EXPECT_TRUE(r.regressed);
  for (const auto& d : r.deltas) {
    if (d.key == "a") EXPECT_EQ(d.status, prof::MetricStatus::kMissing);
    if (d.key == "c") EXPECT_EQ(d.status, prof::MetricStatus::kNew);
  }
}

TEST(BenchDiff, PrefixToleranceAndIgnore) {
  prof::DiffOptions opts;
  opts.prefix_tolerances.emplace_back("noisy.", 0.50);
  opts.ignore_prefixes.push_back("wall.");
  const auto r = prof::DiffSnapshots(
      Snap({{"noisy.fps", 100.0}, {"wall.total_us", 10.0}}),
      Snap({{"noisy.fps", 70.0}, {"wall.total_us", 99.0}}), opts);
  EXPECT_FALSE(r.regressed);  // -30% within 50%; wall.* ignored
  for (const auto& d : r.deltas) {
    if (d.key == "wall.total_us") {
      EXPECT_EQ(d.status, prof::MetricStatus::kIgnored);
    }
  }
}

TEST(BenchDiff, CliExitCodes) {
  const std::string base = testing::TempDir() + "clf_base.json";
  const std::string same = testing::TempDir() + "clf_same.json";
  const std::string reg = testing::TempDir() + "clf_reg.json";
  std::ofstream(base) << "{\"bench\":\"t\",\"metrics\":{\"fps\":100}}";
  std::ofstream(same) << "{\"bench\":\"t\",\"metrics\":{\"fps\":100}}";
  std::ofstream(reg) << "{\"bench\":\"t\",\"metrics\":{\"fps\":80}}";

  std::ostringstream out;
  EXPECT_EQ(prof::RunBenchDiff({base, same}, out), 0);
  EXPECT_EQ(prof::RunBenchDiff({base, reg}, out), 1);
  // Regression forgiven by a wider tolerance.
  EXPECT_EQ(prof::RunBenchDiff({base, reg, "--tol", "0.25"}, out), 0);
  // Usage / IO errors.
  EXPECT_EQ(prof::RunBenchDiff({base}, out), 2);
  EXPECT_EQ(prof::RunBenchDiff({base, "/nonexistent.json"}, out), 2);
  std::remove(base.c_str());
  std::remove(same.c_str());
  std::remove(reg.c_str());
}

TEST(BenchDiff, NonFiniteValuesAreInvalidNotImprovements) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // A NaN current value used to slip through: it fails the tolerance
  // check AND both direction checks, landing in kImproved.
  auto r = prof::DiffSnapshots(Snap({{"fps", 100.0}}), Snap({{"fps", nan}}));
  EXPECT_TRUE(r.invalid);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].status, prof::MetricStatus::kInvalid);

  // Inf on either side, and NaN in the *baseline*, are equally invalid.
  EXPECT_TRUE(prof::DiffSnapshots(Snap({{"lat_us", 10.0}}),
                                  Snap({{"lat_us", inf}}))
                  .invalid);
  EXPECT_TRUE(prof::DiffSnapshots(Snap({{"fps", nan}}),
                                  Snap({{"fps", 100.0}}))
                  .invalid);
  // Invalid is orthogonal to regression: a clean metric next to a NaN
  // one doesn't regress, but the result still fails.
  r = prof::DiffSnapshots(Snap({{"fps", 100.0}, {"x", 1.0}}),
                          Snap({{"fps", nan}, {"x", 1.0}}));
  EXPECT_TRUE(r.invalid);
  EXPECT_FALSE(r.regressed);
}

TEST(BenchDiff, CliFailsHardOnNonFiniteAndNamesBadKeys) {
  const std::string base = testing::TempDir() + "clf_nan_base.json";
  const std::string naninf = testing::TempDir() + "clf_nan_cur.json";
  const std::string nonnum = testing::TempDir() + "clf_nan_str.json";
  std::ofstream(base) << "{\"bench\":\"t\",\"metrics\":{\"fps\":100}}";
  // 1e999 overflows to +inf in the JSON parser's strtod.
  std::ofstream(naninf) << "{\"bench\":\"t\",\"metrics\":{\"fps\":1e999}}";
  std::ofstream(nonnum)
      << "{\"bench\":\"t\",\"metrics\":{\"fps\":\"oops\"}}";

  std::ostringstream out;
  EXPECT_EQ(prof::RunBenchDiff({base, naninf}, out), 2);
  EXPECT_NE(out.str().find("non-finite"), std::string::npos) << out.str();

  out.str("");
  EXPECT_EQ(prof::RunBenchDiff({base, nonnum}, out), 2);
  EXPECT_NE(out.str().find("metric \"fps\" is not a number"),
            std::string::npos)
      << out.str();

  std::remove(base.c_str());
  std::remove(naninf.c_str());
  std::remove(nonnum.c_str());
}

TEST(BenchDiff, ParseErrorNamesTheReason) {
  std::string error;
  EXPECT_FALSE(prof::ParseBenchSnapshot("not json", &error).has_value());
  EXPECT_EQ(error, "not a JSON object");
  EXPECT_FALSE(
      prof::ParseBenchSnapshot("{\"metrics\":{}}", &error).has_value());
  EXPECT_EQ(error, "missing string \"bench\" key");
  EXPECT_FALSE(
      prof::ParseBenchSnapshot(
          "{\"bench\":\"x\",\"metrics\":{\"bad.key\":\"s\"}}", &error)
          .has_value());
  EXPECT_EQ(error, "metric \"bad.key\" is not a number");
}

}  // namespace
}  // namespace clflow
