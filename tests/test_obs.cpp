// Tests for the observability layer: metrics registry semantics,
// histogram percentiles, span nesting, JSON escaping, and schema
// round-trips through the bundled JSON parser (including the merged
// compile+runtime Chrome trace).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/dse.hpp"
#include "nets/nets.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "ocl/trace.hpp"

namespace clflow::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterIsMonotoneAndLabeledSeriesAreDistinct) {
  Registry reg;
  reg.counter("hits").Add();
  reg.counter("hits").Add(2);
  EXPECT_DOUBLE_EQ(reg.counter("hits").value(), 3.0);

  reg.counter("hits", {{"queue", "0"}}).Add(5);
  EXPECT_DOUBLE_EQ(reg.counter("hits").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.counter("hits", {{"queue", "0"}}).value(), 5.0);
}

TEST(Metrics, GaugeLastWriteWins) {
  Registry reg;
  reg.gauge("fmax").Set(260.0);
  reg.gauge("fmax").Set(241.5);
  EXPECT_DOUBLE_EQ(reg.gauge("fmax").value(), 241.5);
  reg.gauge("fmax").Add(-1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("fmax").value(), 240.0);
}

TEST(Metrics, HistogramPercentilesNearestRank) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  h.set_retain_samples(true);  // exact quantiles need the samples
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.p50, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95, 95.0);
  EXPECT_DOUBLE_EQ(snap.p99, 99.0);
}

TEST(Metrics, HistogramSingleSample) {
  Registry reg;
  reg.histogram("x").Observe(7.0);
  const auto snap = reg.histogram("x").snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.p50, 7.0);
  EXPECT_DOUBLE_EQ(snap.p95, 7.0);
  EXPECT_DOUBLE_EQ(snap.p99, 7.0);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
}

TEST(Metrics, SeriesKeyOrdersLabels) {
  EXPECT_EQ(SeriesKey("m", {}), "m");
  // std::map iteration order is key order, so the rendering is canonical.
  EXPECT_EQ(SeriesKey("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
}

TEST(Metrics, CurrentFallsBackToDefault) {
  EXPECT_EQ(Registry::Current(), &Registry::Default());
  Telemetry telemetry;
  {
    ScopedTelemetry scoped(&telemetry);
    EXPECT_EQ(Registry::Current(), &telemetry.registry);
    EXPECT_EQ(Tracer::Current(), &telemetry.tracer);
  }
  EXPECT_EQ(Registry::Current(), &Registry::Default());
  EXPECT_EQ(Tracer::Current(), nullptr);
}

// ------------------------------------------------------------------ spans

TEST(Spans, NestingDepthAndArgs) {
  Telemetry telemetry;
  {
    ScopedTelemetry scoped(&telemetry);
    ScopedSpan outer("compile", "phase");
    {
      ScopedSpan inner("fusion", "phase");
      inner.Arg("nodes", std::int64_t{12});
    }
    outer.Arg("ok", "true");
  }
  const auto& spans = telemetry.tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded in open order.
  EXPECT_EQ(spans[0].name, "compile");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "fusion");
  EXPECT_EQ(spans[1].depth, 1);
  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "nodes");
  EXPECT_EQ(spans[1].args[0].second, "12");
  // Inner span closed first, so its duration fits inside the outer's.
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
}

TEST(Spans, NoopWithoutCurrentTracer) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  ScopedSpan span("orphan", "test");  // must not crash or record anywhere
  span.Arg("k", "v");
}

// ------------------------------------------------------------------- json

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("\r\n\b\f"), "\\r\\n\\b\\f");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
}

TEST(Json, ParserRoundTripsEscapes) {
  const std::string doc =
      "{\"s\":\"" + JsonEscape("k\"1\"\t\n\x01") + "\",\"n\":-2.5,"
      "\"b\":true,\"z\":null,\"a\":[1,2,3]}";
  const auto parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->kind, json::Value::Kind::kObject);
  const auto* s = parsed->Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->str, "k\"1\"\t\n\x01");
  EXPECT_DOUBLE_EQ(parsed->Find("n")->number, -2.5);
  EXPECT_TRUE(parsed->Find("b")->boolean);
  EXPECT_EQ(parsed->Find("z")->kind, json::Value::Kind::kNull);
  ASSERT_EQ(parsed->Find("a")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->Find("a")->array[2].number, 3.0);
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_FALSE(json::Parse("{").has_value());
  EXPECT_FALSE(json::Parse("{}extra").has_value());
  EXPECT_FALSE(json::Parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::Parse("[1,]").has_value());
}

TEST(Json, RegistryToJsonParses) {
  Registry reg;
  reg.counter("ir.pass.applied", {{"pass", "SplitLoop"}}).Add(4);
  reg.gauge("synth.fmax_mhz").Set(241.0);
  reg.histogram("synth.kernel.aluts").set_retain_samples(true);
  for (int i = 0; i < 10; ++i) {
    reg.histogram("synth.kernel.aluts").Observe(1000.0 * i);
  }

  const auto parsed = json::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.has_value());
  const auto* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->array.size(), 1u);
  EXPECT_EQ(counters->array[0].Find("name")->str, "ir.pass.applied");
  EXPECT_EQ(counters->array[0].Find("labels")->Find("pass")->str, "SplitLoop");
  EXPECT_DOUBLE_EQ(counters->array[0].Find("value")->number, 4.0);

  const auto* gauges = parsed->Find("gauges");
  ASSERT_EQ(gauges->array.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges->array[0].Find("value")->number, 241.0);

  const auto* hists = parsed->Find("histograms");
  ASSERT_EQ(hists->array.size(), 1u);
  EXPECT_DOUBLE_EQ(hists->array[0].Find("count")->number, 10.0);
  EXPECT_DOUBLE_EQ(hists->array[0].Find("max")->number, 9000.0);
  // Nearest-rank p99 of {0, 1000, ..., 9000} is the last sample.
  ASSERT_NE(hists->array[0].Find("p99"), nullptr);
  EXPECT_DOUBLE_EQ(hists->array[0].Find("p99")->number, 9000.0);
}

TEST(Json, RegistryCsvHasP99Column) {
  Registry reg;
  for (int i = 1; i <= 4; ++i) reg.histogram("h").Observe(i);
  const std::string csv = reg.ToCsv();
  EXPECT_NE(csv.find("p99"), std::string::npos);
}

TEST(Json, RegistryCsvHasOneRowPerStat) {
  Registry reg;
  reg.counter("c").Add();
  reg.gauge("g").Set(1);
  reg.histogram("h").Observe(1);
  const std::string csv = reg.ToCsv();
  EXPECT_NE(csv.find("counter,c,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,"), std::string::npos);
}

// --------------------------------------------------------- chrome trace

TEST(Trace, MergedCompileRuntimeTraceIsValidJson) {
  std::vector<ocl::ProfiledEvent> events;
  events.push_back({"k_conv\"1\"", ocl::CommandKind::kKernel, 0,
                    SimTime::Us(1), SimTime::Us(2), SimTime::Us(5),
                    kSimTimeZero, 0});

  Telemetry telemetry;
  {
    ScopedTelemetry scoped(&telemetry);
    ScopedSpan compile("compile", "phase");
    ScopedSpan fusion("fusion", "phase");
    fusion.Arg("nodes", std::int64_t{7});
  }

  const std::string trace = ocl::ExportChromeTrace(
      events, telemetry.tracer.spans(), "net@board");
  const auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.has_value()) << trace;
  const auto* top = parsed->Find("traceEvents");
  ASSERT_NE(top, nullptr);
  // 2 process_name metadata + 2 compile spans + 1 runtime event + 2
  // occupancy counter samples (one kernel: +1 at start, -1 at end).
  ASSERT_EQ(top->array.size(), 7u);

  int metadata = 0, compile_spans = 0, runtime_events = 0, counters = 0;
  for (const auto& ev : top->array) {
    const auto* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      ++metadata;
    } else if (ph->str == "C") {
      ++counters;
      EXPECT_EQ(ev.Find("name")->str, "queue occupancy");
      EXPECT_NE(ev.Find("args")->Find("commands"), nullptr);
    } else {
      ASSERT_EQ(ph->str, "X");
      const double pid = ev.Find("pid")->number;
      if (pid == 1.0) {
        ++compile_spans;
        EXPECT_NE(ev.Find("args")->Find("depth"), nullptr);
      } else {
        EXPECT_DOUBLE_EQ(pid, 2.0);
        ++runtime_events;
        EXPECT_EQ(ev.Find("name")->str, "k_conv\"1\"");
        EXPECT_DOUBLE_EQ(ev.Find("dur")->number, 3.0);
      }
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(compile_spans, 2);
  EXPECT_EQ(runtime_events, 1);
  EXPECT_EQ(counters, 2);
}

TEST(Trace, EmptyEventListIsValidJson) {
  const std::string trace = ocl::ExportChromeTrace(
      std::vector<ocl::ProfiledEvent>{}, "empty@board");
  const auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.has_value()) << trace;
  // Only the process_name metadata event; no counters for no events.
  ASSERT_EQ(parsed->Find("traceEvents")->array.size(), 1u);
}

TEST(Trace, ZeroDurationEventContributesNoOccupancy) {
  std::vector<ocl::ProfiledEvent> events;
  events.push_back({"k_instant", ocl::CommandKind::kKernel, 0,
                    SimTime::Us(1), SimTime::Us(2), SimTime::Us(2),
                    kSimTimeZero, 0});
  const std::string trace = ocl::ExportChromeTrace(events, "z@board");
  const auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.has_value()) << trace;
  for (const auto& ev : parsed->Find("traceEvents")->array) {
    if (ev.Find("ph")->str != "C") continue;
    // +1 and -1 at the same instant merge to a zero sample.
    EXPECT_DOUBLE_EQ(ev.Find("args")->Find("commands")->number, 0.0);
  }
}

TEST(Trace, StallRendersAsDistinguishableSlice) {
  std::vector<ocl::ProfiledEvent> events;
  // Dispatched at 4us, blocked on channels until 10us, done at 16us.
  events.push_back({"k_stalled", ocl::CommandKind::kKernel, 1,
                    SimTime::Us(3), SimTime::Us(10), SimTime::Us(16),
                    SimTime::Us(6), 0});
  const std::string trace = ocl::ExportChromeTrace(events, "s@board");
  const auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.has_value()) << trace;
  const json::Value* stall = nullptr;
  const json::Value* kernel = nullptr;
  for (const auto& ev : parsed->Find("traceEvents")->array) {
    if (ev.Find("ph")->str != "X") continue;
    if (ev.Find("name")->str == "k_stalled [stall]") stall = &ev;
    if (ev.Find("name")->str == "k_stalled") kernel = &ev;
  }
  ASSERT_NE(stall, nullptr);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(stall->Find("cat")->str, "stall");
  EXPECT_DOUBLE_EQ(stall->Find("ts")->number, 4.0);
  EXPECT_DOUBLE_EQ(stall->Find("dur")->number, 6.0);
  // Same lane, and the stall ends exactly where the kernel slice begins.
  EXPECT_DOUBLE_EQ(stall->Find("tid")->number, kernel->Find("tid")->number);
  EXPECT_DOUBLE_EQ(kernel->Find("ts")->number, 10.0);
  EXPECT_DOUBLE_EQ(kernel->Find("dur")->number, 6.0);
}

TEST(Trace, TransferBytesCounterAndEscapedLabelsRoundTrip) {
  std::vector<ocl::ProfiledEvent> events;
  events.push_back({"h2d \"in\"\n", ocl::CommandKind::kWriteBuffer, 0,
                    kSimTimeZero, SimTime::Us(0), SimTime::Us(4),
                    kSimTimeZero, 4096});
  events.push_back({"d2h", ocl::CommandKind::kReadBuffer, 0,
                    SimTime::Us(2), SimTime::Us(2), SimTime::Us(6),
                    kSimTimeZero, 1024});
  const std::string trace = ocl::ExportChromeTrace(events, "x@board");
  const auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.has_value()) << trace;
  bool saw_label = false;
  std::vector<double> samples;
  for (const auto& ev : parsed->Find("traceEvents")->array) {
    if (ev.Find("ph")->str == "X" && ev.Find("name")->str == "h2d \"in\"\n") {
      saw_label = true;  // escaping round-tripped through the parser
    }
    if (ev.Find("ph")->str == "C" &&
        ev.Find("name")->str == "outstanding transfer bytes") {
      samples.push_back(ev.Find("args")->Find("bytes")->number);
    }
  }
  EXPECT_TRUE(saw_label);
  // ts 0: +4096; ts 2: +1024; ts 4: -4096; ts 6: back to zero.
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples[0], 4096.0);
  EXPECT_DOUBLE_EQ(samples[1], 5120.0);
  EXPECT_DOUBLE_EQ(samples[2], 1024.0);
  EXPECT_DOUBLE_EQ(samples[3], 0.0);
}

// ------------------------------------------------- histogram windowing

TEST(Metrics, HistogramSlidingWindowEvictsOldest) {
  Histogram h;
  h.set_window(3);
  for (int i = 1; i <= 5; ++i) h.Observe(i);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3);  // only {3, 4, 5} retained
  EXPECT_DOUBLE_EQ(snap.min, 3.0);
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
  EXPECT_DOUBLE_EQ(snap.sum, 12.0);
  EXPECT_DOUBLE_EQ(snap.p50, 4.0);

  const auto samples = h.window_samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples.front(), 3.0);  // oldest first
  EXPECT_DOUBLE_EQ(samples.back(), 5.0);
}

TEST(Metrics, HistogramShrinkingWindowEvictsImmediately) {
  Histogram h;
  h.set_retain_samples(true);  // windows are a retained-mode feature
  for (int i = 1; i <= 10; ++i) h.Observe(i);
  h.set_window(2);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_DOUBLE_EQ(snap.min, 9.0);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  // Widening again never resurrects evicted samples.
  h.set_window(0);
  EXPECT_EQ(h.snapshot().count, 2);
}

TEST(Metrics, HistogramEmptyAndSingleSampleWindowsAreConsistent) {
  Histogram h;
  h.set_window(4);
  // Empty: every statistic is exactly zero, no stale carryover possible.
  auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.p95, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);

  // One sample: every percentile is that sample.
  h.Observe(42.0);
  snap = h.snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.p50, 42.0);
  EXPECT_DOUBLE_EQ(snap.p95, 42.0);
  EXPECT_DOUBLE_EQ(snap.p99, 42.0);

  // Full rotation: statistics reflect only the live window, nothing of
  // the original sample remains.
  for (int i = 0; i < 4; ++i) h.Observe(7.0);
  snap = h.snapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.min, 7.0);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  EXPECT_DOUBLE_EQ(snap.p99, 7.0);
  EXPECT_DOUBLE_EQ(snap.sum, 28.0);
}

// ------------------------------------------------- Prometheus export

TEST(Metrics, ToPrometheusExposesAllMetricKinds) {
  Registry reg;
  reg.counter("compile.cache.hits").Add(3);
  reg.gauge("telemetry.slo.burn_rate", {{"board", "s10mx"}}).Set(1.5);
  Histogram& h = reg.histogram("telemetry.slo.latency_us");
  h.set_retain_samples(true);  // the assertions below are exact quantiles
  for (int i = 1; i <= 100; ++i) h.Observe(i);

  const std::string text = reg.ToPrometheus();
  // Dots fold to underscores; counters/gauges typed; labels preserved.
  EXPECT_NE(text.find("# TYPE compile_cache_hits counter"),
            std::string::npos);
  EXPECT_NE(text.find("compile_cache_hits 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE telemetry_slo_burn_rate gauge"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_slo_burn_rate{board=\"s10mx\"} 1.5"),
            std::string::npos);
  // Histograms export as summaries: quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE telemetry_slo_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_slo_latency_us{quantile=\"0.5\"} 50"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_slo_latency_us{quantile=\"0.99\"} 99"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_slo_latency_us_count 100"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_slo_latency_us_sum 5050"),
            std::string::npos);
}

TEST(Metrics, ToPrometheusDeduplicatesTypeHeadersAcrossLabelSets) {
  Registry reg;
  reg.gauge("queue.busy", {{"queue", "0"}}).Set(1.0);
  reg.gauge("queue.busy", {{"queue", "1"}}).Set(2.0);
  const std::string text = reg.ToPrometheus();
  std::size_t headers = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE queue_busy gauge", pos)) != std::string::npos;
       ++pos) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
  EXPECT_NE(text.find("queue_busy{queue=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("queue_busy{queue=\"1\"} 2"), std::string::npos);
}

TEST(Metrics, BucketedHistogramQuantilesWithinOnePercent) {
  // The default (log-bucketed) registry histogram must track exact
  // nearest-rank quantiles to within 1% relative error -- the obs v2
  // drift gate that lets serving paths drop sample retention.
  Registry reg;
  Histogram& bucketed = reg.histogram("bucketed");
  Histogram exact;
  exact.set_retain_samples(true);
  Rng rng(2021);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::exp(rng.NextDouble() * 8.0);
    bucketed.Observe(v);
    exact.Observe(v);
  }
  const auto b = bucketed.snapshot();
  const auto e = exact.snapshot();
  EXPECT_EQ(b.count, e.count);
  // Sums agree to rounding (the two modes accumulate in different
  // orders); min/max are exact in both.
  EXPECT_NEAR(b.sum, e.sum, std::abs(e.sum) * 1e-12);
  EXPECT_DOUBLE_EQ(b.min, e.min);
  EXPECT_DOUBLE_EQ(b.max, e.max);
  EXPECT_LT(std::abs(b.p50 - e.p50) / e.p50, 0.01);
  EXPECT_LT(std::abs(b.p95 - e.p95) / e.p95, 0.01);
  EXPECT_LT(std::abs(b.p99 - e.p99) / e.p99, 0.01);
}

TEST(Metrics, HistogramMergeAndDigestAreShardOrderDeterministic) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) {
    (i % 2 == 0 ? a : b).Observe(i + 1);
  }
  // Shard-order merge must digest like the serial stream that observed
  // a's samples then b's (bucket counts are order-free integers).
  Histogram ordered;
  for (int i = 0; i < 100; i += 2) ordered.Observe(i + 1);
  for (int i = 1; i < 100; i += 2) ordered.Observe(i + 1);
  Histogram merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.Digest(), ordered.Digest());
  EXPECT_EQ(merged.snapshot().count, 100);
}

TEST(Metrics, ToPrometheusEscapesLabelValues) {
  Registry reg;
  reg.gauge("esc", {{"path", "a\\b"}, {"msg", "say \"hi\"\nbye"}}).Set(1.0);
  const std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("msg=\"say \\\"hi\\\"\\nbye\""), std::string::npos);
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos);
  // The raw newline must never appear inside a sample line.
  EXPECT_EQ(text.find("say \"hi\"\n"), std::string::npos);
}

TEST(Metrics, ToPrometheusExportsSeriesWithProperLabels) {
  // Dimensions ride in labels (ha_board_state{board="s10sx0"}), never in
  // the metric name; counter series get a _total plus a windowed
  // _rate_per_s, gauge series export their latest value.
  Registry reg;
  const WindowSpec ws{SimTime::Ms(1.0), 8};
  TimeSeries& reqs =
      reg.series("serve.arrivals", {}, TimeSeries::Kind::kCounter, ws);
  for (int i = 0; i < 10; ++i) {
    reqs.Record(SimTime::Us(100.0 * i + 50.0));
  }
  reg.series("ha.board.state", {{"board", "s10sx0"}},
             TimeSeries::Kind::kGauge, ws)
      .Record(SimTime::Ms(0.5), 2.0);
  reg.series("ha.board.state", {{"board", "s10sx1"}},
             TimeSeries::Kind::kGauge, ws)
      .Record(SimTime::Ms(0.5), 0.0);

  const std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("# TYPE serve_arrivals_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("serve_arrivals_total 10"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_arrivals_rate_per_s gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ha_board_state gauge"), std::string::npos);
  EXPECT_NE(text.find("ha_board_state{board=\"s10sx0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ha_board_state{board=\"s10sx1\"} 0"),
            std::string::npos);
  // One TYPE header even with two labeled board series.
  std::size_t headers = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE ha_board_state gauge", pos)) !=
       std::string::npos;
       ++pos) {
    ++headers;
  }
  EXPECT_EQ(headers, 1u);
}

TEST(Metrics, RegistrySeriesFixesKindAndSpecOnFirstUse) {
  Registry reg;
  const WindowSpec ws{SimTime::Us(100.0), 4};
  TimeSeries& s =
      reg.series("s", {}, TimeSeries::Kind::kGauge, ws);
  // A later call with different arguments returns the same instance.
  TimeSeries& again = reg.series("s", {}, TimeSeries::Kind::kCounter,
                                 WindowSpec{SimTime::Ms(5.0), 99});
  EXPECT_EQ(&s, &again);
  EXPECT_EQ(again.kind(), TimeSeries::Kind::kGauge);
  EXPECT_EQ(again.spec().windows, 4u);
  const auto keys = reg.SeriesKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].first, "s");
}

// ------------------------------------- flow-id determinism vs DSE jobs

TEST(Trace, FlowEventIdsAreIdenticalAcrossDseJobCounts) {
  // The whole causal-tracing pipeline must be thread-count invariant:
  // explore tilings serially and with every hardware thread, deploy each
  // winner, and demand the runtime Chrome traces -- flow-event ids
  // included -- come out byte-identical.
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Rng img_rng(3);
  Tensor image = Tensor::Random(in_shape, img_rng, 0.0f, 1.0f);

  auto trace_with_jobs = [&](int jobs) {
    core::DseOptions dopts;
    dopts.jobs = jobs;
    const auto dse =
        core::ExploreFoldedTilings(net, fpga::Stratix10SX(), dopts);
    EXPECT_FALSE(dse.ranked.empty());
    core::DeployOptions opts;
    opts.mode = core::ExecutionMode::kFolded;
    opts.recipe = dse.BestRecipe("s10sx");
    opts.board = fpga::Stratix10SX();
    auto d = core::Deployment::Compile(net, opts);
    EXPECT_TRUE(d.ok());
    for (int i = 0; i < 2; ++i) (void)d.Run(image, /*functional=*/false);
    return ocl::ExportChromeTrace(d.runtime().events());
  };

  const std::string serial = trace_with_jobs(1);
  const std::string parallel = trace_with_jobs(HardwareThreads());
  EXPECT_EQ(serial, parallel);

  // And the flow arrows are actually present in what we compared.
  EXPECT_NE(serial.find("\"ph\":\"s\",\"id\":1"), std::string::npos);
  EXPECT_NE(serial.find("\"ph\":\"s\",\"id\":2"), std::string::npos);
}

}  // namespace
}  // namespace clflow::obs
