// Tests for the auxiliary extensions: ReorderLoops / CacheRead schedule
// primitives, parameter serialization, and trace export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/params_io.hpp"
#include "ir/analysis.hpp"
#include "ir/interp.hpp"
#include "cpu/ops.hpp"
#include "ir/op_kernels.hpp"
#include "ir/passes.hpp"
#include "nets/nets.hpp"
#include "ocl/trace.hpp"

namespace clflow {
namespace {

// --- ReorderLoops -------------------------------------------------------------

ir::Kernel TransposeKernel(const ir::BufferPtr& in, const ir::BufferPtr& out,
                           std::int64_t rows, std::int64_t cols) {
  auto i = ir::MakeVar("i");
  auto j = ir::MakeVar("j");
  ir::Kernel k;
  k.name = "transpose";
  k.buffer_args = {in, out};
  k.body = ir::For(
      i, ir::IntImm(0), ir::IntImm(rows),
      ir::For(j, ir::IntImm(0), ir::IntImm(cols),
              ir::Store(out, {ir::VarRef(j), ir::VarRef(i)},
                        ir::Load(in, {ir::VarRef(i), ir::VarRef(j)}))));
  return k;
}

TEST(ReorderLoops, InterchangePreservesSemantics) {
  constexpr std::int64_t kRows = 5, kCols = 7;
  auto in = ir::MakeBuffer("in", {ir::IntImm(kRows), ir::IntImm(kCols)},
                           ir::MemScope::kGlobal, true);
  auto out = ir::MakeBuffer("out", {ir::IntImm(kCols), ir::IntImm(kRows)},
                            ir::MemScope::kGlobal, true);
  ir::Kernel base = TransposeKernel(in, out, kRows, kCols);
  ir::Kernel swapped = TransposeKernel(in, out, kRows, kCols);
  swapped.body = ir::ReorderLoops(swapped.body, "i", "j");

  // After interchange j is outermost.
  EXPECT_EQ(swapped.body->var->name, "j");
  EXPECT_EQ(swapped.body->body->var->name, "i");

  Rng rng(3);
  Tensor src = Tensor::Random(Shape{kRows, kCols}, rng);
  for (const ir::Kernel* k : {&base, &swapped}) {
    Tensor dst(Shape{kCols, kRows});
    ir::InterpEnv env;
    Tensor s = src.Clone();
    env.BindBuffer(in, s.data());
    env.BindBuffer(out, dst.data());
    ir::RunKernel(*k, env);
    for (std::int64_t r = 0; r < kRows; ++r) {
      for (std::int64_t c = 0; c < kCols; ++c) {
        EXPECT_EQ(dst.at(c * kRows + r), src.at(r * kCols + c));
      }
    }
  }
}

TEST(ReorderLoops, RejectsImperfectNest) {
  auto buf = ir::MakeBuffer("b", {ir::IntImm(4)}, ir::MemScope::kGlobal, true);
  auto i = ir::MakeVar("i");
  auto j = ir::MakeVar("j");
  // i's body is a block: store + inner loop -> imperfect.
  auto body = ir::Block(
      {ir::Store(buf, {ir::VarRef(i)}, ir::FloatImm(0)),
       ir::For(j, ir::IntImm(0), ir::IntImm(4),
               ir::Store(buf, {ir::VarRef(j)}, ir::FloatImm(1)))});
  auto root = ir::For(i, ir::IntImm(0), ir::IntImm(4), body);
  EXPECT_THROW((void)ir::ReorderLoops(root, "i", "j"), ScheduleError);
}

// --- CacheRead ------------------------------------------------------------------

TEST(CacheRead, StagesWeightsOnChip) {
  auto bk = ir::BuildDenseKernel({.c1 = 16, .c2 = 8},
                                 {.cached_writes = true, .unroll_k = 4},
                                 "dense_cr");
  const auto before = ir::AnalyzeKernel(bk.kernel);
  ir::CacheRead(bk.kernel, "wt");
  const auto after = ir::AnalyzeKernel(bk.kernel);

  // The weight matrix now lives in BRAM...
  EXPECT_EQ(after.local_elems, before.local_elems + 16 * 8);
  // ...and global weight traffic collapses to the single fill pass.
  auto wt_traffic = [](const ir::KernelStats& s) {
    double total = 0;
    for (const auto& site : s.accesses) {
      if (site.buffer == "wt" && !site.is_store) {
        total += site.elems_per_invocation;
      }
    }
    return total;
  };
  // Dense weights were already streamed exactly once, so traffic is
  // unchanged (the cache still removes the global LSU from the compute
  // loop); convolutions, which re-read weights per output position, see a
  // real reduction below.
  EXPECT_EQ(wt_traffic(after), 16 * 8);
  EXPECT_GE(wt_traffic(before), wt_traffic(after));

  auto conv = ir::BuildConv2dKernel(
      {.c1 = 2, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
       .has_bias = false},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true},
      "conv_cr2");
  const auto conv_before = ir::AnalyzeKernel(conv.kernel);
  ir::CacheRead(conv.kernel, "wt");
  const auto conv_after = ir::AnalyzeKernel(conv.kernel);
  EXPECT_GT(wt_traffic(conv_before), wt_traffic(conv_after));
  EXPECT_EQ(wt_traffic(conv_after), 4 * 2 * 3 * 3);

  // Semantics preserved.
  Rng rng(9);
  Tensor x = Tensor::Random(Shape{16}, rng);
  Tensor w = Tensor::Random(Shape{8, 16}, rng);
  Tensor bias = Tensor::Random(Shape{8}, rng);
  Tensor out(Shape{8});
  ir::InterpEnv env;
  env.BindBuffer(bk.input, x.data());
  env.BindBuffer(bk.weights, w.data());
  env.BindBuffer(bk.bias, bias.data());
  env.BindBuffer(bk.output, out.data());
  ir::RunKernel(bk.kernel, env);
  Tensor expected = clflow::cpu::Dense(x.Reshaped(Shape{1, 16}), w, bias,
                               Activation::kNone);
  EXPECT_LT(Tensor::MaxRelDiff(out.Reshaped(expected.shape()), expected),
            1e-5f);
}

TEST(CacheRead, RejectsWrittenOrSymbolicBuffers) {
  auto bk = ir::BuildConv2dKernel({.c1 = 2, .h1 = 6, .w1 = 6, .k = 2, .f = 3},
                                  {}, "conv_cr");
  // The naive scratchpad is written: not cacheable as a read.
  EXPECT_THROW(ir::CacheRead(bk.kernel, "scratchpad"), ScheduleError);
  EXPECT_THROW(ir::CacheRead(bk.kernel, "missing"), ScheduleError);

  auto sym = ir::BuildConv2dKernel(
      {.f = 3, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .symbolic = true},
      "conv_sym_cr");
  EXPECT_THROW(ir::CacheRead(sym.kernel, "wt"), ScheduleError);
}

// --- Parameter serialization -----------------------------------------------------

TEST(ParamsIo, TensorRoundTrip) {
  const std::string path = ::testing::TempDir() + "/t.clf";
  Rng rng(11);
  Tensor t = Tensor::Random(Shape{3, 4, 5}, rng);
  graph::SaveTensor(t, path);
  Tensor back = graph::LoadTensor(path);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(Tensor::MaxAbsDiff(back, t), 0.0f);
}

TEST(ParamsIo, RejectsGarbageFiles) {
  const std::string path = ::testing::TempDir() + "/garbage.clf";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a tensor", f);
  std::fclose(f);
  EXPECT_THROW((void)graph::LoadTensor(path), Error);
  EXPECT_THROW((void)graph::LoadTensor("/nonexistent/x.clf"), Error);
}

TEST(ParamsIo, NetworkRoundTripPreservesInference) {
  const std::string dir = ::testing::TempDir() + "/lenet_params";
  std::filesystem::create_directories(dir);

  Rng rng_a(21), rng_b(22);
  graph::Graph trained = nets::BuildLeNet5(rng_a);
  graph::Graph fresh = nets::BuildLeNet5(rng_b);  // different weights

  const int files = graph::SaveParameters(trained, dir);
  EXPECT_EQ(files, 10);  // 5 parameterized layers x (w + b)
  graph::Graph restored = graph::LoadParameters(fresh, dir);

  Rng img_rng(23);
  Tensor image = nets::SyntheticMnistImage(img_rng);
  Tensor expected = graph::Execute(trained, image);
  Tensor before = graph::Execute(fresh, image);
  Tensor after = graph::Execute(restored, image);
  EXPECT_GT(Tensor::MaxAbsDiff(before, expected), 1e-4f);  // really differed
  EXPECT_EQ(Tensor::MaxAbsDiff(after, expected), 0.0f);    // fully restored
}

// --- Trace export ------------------------------------------------------------------

TEST(Trace, ExportsWellFormedChromeTrace) {
  std::vector<ocl::ProfiledEvent> events;
  events.push_back({"write_input", ocl::CommandKind::kWriteBuffer, 0,
                    SimTime::Us(0), SimTime::Us(1), SimTime::Us(26),
                    kSimTimeZero, 4096});
  events.push_back({"k_conv\"1\"", ocl::CommandKind::kKernel, -1,
                    SimTime::Us(26), SimTime::Us(26), SimTime::Us(80),
                    kSimTimeZero, 0});
  const std::string json = ocl::ExportChromeTrace(events, "lenet");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"write_input\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
  // Quotes in labels are escaped; autorun maps to tid 0.
  EXPECT_NE(json.find("k_conv\\\"1\\\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  // Balanced braces (rough well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace clflow
