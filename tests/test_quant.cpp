// Tests for the int8 quantization extension (paper SS8.1 future work):
// tensor-level round-trips, operator correctness against the float
// reference, graph calibration/execution, and the precision-aware FPGA
// model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "cpu/ops.hpp"
#include "common/rng.hpp"
#include "fpga/synth.hpp"
#include "ir/op_kernels.hpp"
#include "nets/nets.hpp"
#include "quant/quantize.hpp"

namespace clflow::quant {
namespace {

TEST(QTensor, RoundTripWithinOneStep) {
  Rng rng(1);
  Tensor t = Tensor::Random(Shape{256}, rng, -3.0f, 3.0f);
  QTensor q = QuantizeAuto(t);
  Tensor back = Dequantize(q);
  // Max error is half a quantization step.
  EXPECT_LE(Tensor::MaxAbsDiff(t, back), q.scale * 0.5f + 1e-6f);
  EXPECT_GT(SqnrDb(t, back), 30.0);
}

TEST(QTensor, ScaleCoversMaxValue) {
  Tensor t = Tensor::FromData(Shape{3}, {-0.4f, 2.54f, 1.0f});
  QTensor q = QuantizeAuto(t);
  EXPECT_NEAR(q.scale, 2.54f / 127.0f, 1e-6f);
  EXPECT_EQ(q.data[1], 127);
}

TEST(QTensor, ZeroTensorDoesNotDivideByZero) {
  Tensor t = Tensor::Full(Shape{4}, 0.0f);
  QTensor q = QuantizeAuto(t);
  for (auto v : q.data) EXPECT_EQ(v, 0);
}

TEST(QConv2d, TracksFloatReference) {
  Rng rng(2);
  Tensor input = Tensor::Random(Shape{1, 4, 10, 10}, rng);
  Tensor w = Tensor::HeNormal(Shape{8, 4, 3, 3}, rng, 36);
  Tensor bias = Tensor::Random(Shape{8}, rng, -0.2f, 0.2f);
  Tensor expected = clflow::cpu::Conv2d(input, w, bias,
                                {.stride = 1, .activation = Activation::kRelu});

  QTensor qin = QuantizeAuto(input);
  QTensor qw = QuantizeAuto(w);
  std::vector<std::int32_t> qbias(8);
  for (int i = 0; i < 8; ++i) {
    qbias[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
        std::lround(bias.at(i) / (qin.scale * qw.scale)));
  }
  const float out_scale = ChooseScale(expected);
  QTensor out = QConv2d(qin, qw, qbias,
                        {.stride = 1, .activation = Activation::kRelu,
                         .out_scale = out_scale},
                        2);
  EXPECT_GT(SqnrDb(expected, Dequantize(out)), 25.0);
}

TEST(QDense, TracksFloatReference) {
  Rng rng(3);
  Tensor x = Tensor::Random(Shape{1, 64}, rng);
  Tensor w = Tensor::HeNormal(Shape{16, 64}, rng, 64);
  Tensor expected = clflow::cpu::Dense(x, w, Tensor(), Activation::kNone);

  QTensor qx = QuantizeAuto(x.Reshaped(Shape{1, 64}));
  QTensor qw = QuantizeAuto(w);
  QTensor out = QDense(qx, qw, {}, Activation::kNone, ChooseScale(expected));
  EXPECT_GT(SqnrDb(expected, Dequantize(out).Reshaped(expected.shape())),
            25.0);
}

TEST(QMaxPool, ExactlyMatchesIntSemantics) {
  Rng rng(4);
  Tensor t = Tensor::Random(Shape{1, 2, 6, 6}, rng);
  QTensor q = QuantizeAuto(t);
  QTensor pooled = QMaxPool2d(q, 2, 2);
  // Max pooling in int8 equals quantize(maxpool(dequantized)) exactly:
  // max commutes with the monotonic quantization.
  Tensor ref = clflow::cpu::MaxPool2d(Dequantize(q), {.window = 2, .stride = 2});
  EXPECT_EQ(Tensor::MaxAbsDiff(ref, Dequantize(pooled)), 0.0f);
  EXPECT_EQ(pooled.scale, q.scale);
}

TEST(QPad, InsertsExactZeros) {
  Rng rng(5);
  QTensor q = QuantizeAuto(Tensor::Random(Shape{1, 2, 3, 3}, rng));
  QTensor padded = QPad2d(q, 1);
  EXPECT_EQ(padded.shape, (Shape{1, 2, 5, 5}));
  EXPECT_EQ(padded.data[0], 0);
  EXPECT_EQ(padded.data[padded.data.size() - 1], 0);
}

TEST(QAdd, RequantizesMixedScales) {
  QTensor a;
  a.shape = Shape{2};
  a.scale = 0.5f;
  a.data = {10, -10};  // 5.0, -5.0
  QTensor b;
  b.shape = Shape{2};
  b.scale = 0.25f;
  b.data = {4, 4};  // 1.0, 1.0
  QTensor out = QAdd(a, b, Activation::kRelu, 0.1f);
  EXPECT_EQ(out.data[0], 60);  // 6.0 / 0.1
  EXPECT_EQ(out.data[1], 0);   // relu(-4.0)
}

TEST(QuantizedGraph, LeNetAgreesWithFloat) {
  Rng rng(6);
  graph::Graph lenet = graph::FuseOperators(nets::BuildLeNet5(rng));
  std::vector<Tensor> calib;
  for (int i = 0; i < 4; ++i) calib.push_back(nets::SyntheticMnistImage(rng));
  auto q = QuantizedGraph::Calibrate(lenet, calib, 2);

  std::vector<Tensor> eval;
  for (int i = 0; i < 8; ++i) eval.push_back(nets::SyntheticMnistImage(rng));
  const double agreement = Top1Agreement(lenet, q, eval, 2);
  EXPECT_GE(agreement, 0.75);  // int8 keeps the argmax most of the time

  // Output distributions stay close.
  const Tensor f = graph::Execute(lenet, eval[0], 2);
  const Tensor i8 = q.Execute(eval[0], 2).Reshaped(f.shape());
  EXPECT_GT(SqnrDb(f, i8), 10.0);
}

TEST(QuantizedGraph, ParameterBytesAreQuartered) {
  Rng rng(7);
  graph::Graph lenet = graph::FuseOperators(nets::BuildLeNet5(rng));
  std::vector<Tensor> calib{nets::SyntheticMnistImage(rng)};
  auto q = QuantizedGraph::Calibrate(lenet, calib);
  const auto cost = graph::GraphCost(lenet);
  // int8 weights + int32 biases vs 4 bytes/param in float.
  EXPECT_LT(q.parameter_bytes(), cost.params * 2);
  EXPECT_GT(q.parameter_bytes(), cost.params);  // weights are there
}

TEST(QuantizedGraph, CalibrationRequiresInputs) {
  Rng rng(8);
  graph::Graph lenet = graph::FuseOperators(nets::BuildLeNet5(rng));
  EXPECT_THROW((void)QuantizedGraph::Calibrate(lenet, {}), Error);
}

// --- Precision-aware device model ---------------------------------------------

TEST(PrecisionModel, Int8HalvesDspsAndShrinksLsus) {
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 16, .h1 = 28, .w1 = 28, .k = 16, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_c1 = 4,
       .tile_w2 = 7, .tile_c2 = 4},
      "qconv");
  fpga::CostModel fp32;
  fpga::CostModel int8;
  int8.data_bytes = 1.0;
  int8.ops_per_dsp = 2;
  const auto bs32 = fpga::Synthesize({{&bk.kernel, {}}},
                                     fpga::Stratix10SX(), {}, fp32);
  const auto bs8 = fpga::Synthesize({{&bk.kernel, {}}},
                                    fpga::Stratix10SX(), {}, int8);
  EXPECT_EQ(bs8.totals.dsps, (bs32.totals.dsps + 1) / 2);
  EXPECT_LT(bs8.totals.aluts, bs32.totals.aluts);
  EXPECT_LE(bs8.kernels[0].lsu_width_bits, bs32.kernels[0].lsu_width_bits / 2);
}

TEST(PrecisionModel, Int8ReducesMemoryTime) {
  ir::KernelStats stats;
  stats.compute_cycles = 1.0;
  ir::AccessSite site;
  site.elems_per_invocation = 1e6;
  site.run_elems = 4096;
  stats.accesses.push_back(site);
  fpga::CostModel fp32;
  fpga::CostModel int8;
  int8.data_bytes = 1.0;
  const double c32 =
      fpga::InvocationCycles(stats, fpga::Stratix10SX(), 200.0, fp32);
  const double c8 =
      fpga::InvocationCycles(stats, fpga::Stratix10SX(), 200.0, int8);
  EXPECT_NEAR(c32 / c8, 4.0, 0.01);
}

}  // namespace
}  // namespace clflow::quant
