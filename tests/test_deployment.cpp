// Integration tests for the end-to-end compilation flow: pipelined and
// folded deployments, the optimization ladder, synthesis outcomes per
// board, and functional equivalence with the reference execution.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/deployment.hpp"
#include "nets/nets.hpp"

namespace clflow::core {
namespace {

class LeNetDeployment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(77);
    net_ = new graph::Graph(nets::BuildLeNet5(*rng_));
    image_ = new Tensor(nets::SyntheticMnistImage(*rng_));
  }
  static void TearDownTestSuite() {
    delete rng_;
    delete net_;
    delete image_;
    rng_ = nullptr;
    net_ = nullptr;
    image_ = nullptr;
  }

  static Deployment Deploy(OptimizationRecipe recipe,
                           const fpga::BoardSpec& board, bool ce = false) {
    DeployOptions o;
    o.mode = ExecutionMode::kPipelined;
    o.recipe = std::move(recipe);
    o.recipe.concurrent_execution = ce;
    o.board = board;
    return Deployment::Compile(*net_, o);
  }

  static Rng* rng_;
  static graph::Graph* net_;
  static Tensor* image_;
};

Rng* LeNetDeployment::rng_ = nullptr;
graph::Graph* LeNetDeployment::net_ = nullptr;
Tensor* LeNetDeployment::image_ = nullptr;

TEST_F(LeNetDeployment, AllLadderRungsSynthesizeOnAllBoards) {
  for (const auto& board : fpga::EvaluationBoards()) {
    for (const auto& recipe : PipelineLadder()) {
      auto d = Deploy(recipe, board);
      EXPECT_TRUE(d.ok()) << board.key << "/" << recipe.name << ": "
                          << d.bitstream().status_detail;
    }
  }
}

TEST_F(LeNetDeployment, FunctionalOutputMatchesReferenceForEveryRung) {
  const Tensor expected = graph::Execute(*net_, *image_);
  for (const auto& recipe : PipelineLadder()) {
    auto d = Deploy(recipe, fpga::Stratix10SX(), /*ce=*/true);
    auto r = d.Run(*image_, /*functional=*/true);
    EXPECT_TRUE(Tensor::AllClose(r.output.Reshaped(expected.shape()),
                                 expected, 1e-4f, 1e-5f))
        << recipe.name;
  }
}

TEST_F(LeNetDeployment, LadderImprovesMonotonically) {
  // Figure 6.1: each optimization improves on the previous one (with
  // concurrent execution enabled, as in the best-configuration plot).
  for (const auto& board : fpga::EvaluationBoards()) {
    double last_fps = 0.0;
    for (const auto& recipe : PipelineLadder()) {
      auto d = Deploy(recipe, board, /*ce=*/true);
      const double fps = d.EstimateFps(*image_);
      // "Match/marginally exceed" (SS6.3.3): TVM-Autorun's weight-cache
      // fill adds a few cycles, so allow a 5% tolerance between rungs.
      EXPECT_GE(fps, last_fps * 0.95)
          << board.key << ": " << recipe.name << " regressed";
      last_fps = std::max(last_fps, fps);
    }
  }
}

TEST_F(LeNetDeployment, ConcurrentExecutionHelpsChannelizedDesigns) {
  auto serial = Deploy(PipelineAutorun(), fpga::Stratix10SX(), false);
  auto ce = Deploy(PipelineAutorun(), fpga::Stratix10SX(), true);
  EXPECT_GT(ce.EstimateFps(*image_), 1.2 * serial.EstimateFps(*image_));
}

TEST_F(LeNetDeployment, OptimizedBeatsBaseSubstantially) {
  // Table 6.9: 3x-9.4x over base depending on the board.
  for (const auto& board : fpga::EvaluationBoards()) {
    auto base = Deploy(PipelineBase(), board);
    auto opt = Deploy(PipelineTvmAutorun(), board, /*ce=*/true);
    const double speedup =
        opt.EstimateFps(*image_) / base.EstimateFps(*image_);
    EXPECT_GT(speedup, 2.5) << board.key;
    EXPECT_LT(speedup, 20.0) << board.key;
  }
}

TEST_F(LeNetDeployment, AutorunKernelsAreWeightless) {
  auto d = Deploy(PipelineAutorun(), fpga::Stratix10SX());
  int autorun_count = 0;
  for (const auto& inv : d.invocations()) {
    if (!inv.autorun) continue;
    ++autorun_count;
    const auto& pk = d.kernels()[static_cast<std::size_t>(inv.kernel_index)];
    EXPECT_TRUE(pk.built.kernel.buffer_args.empty());
  }
  // pool1, pool2, flatten.
  EXPECT_EQ(autorun_count, 3);
}

TEST_F(LeNetDeployment, EstimateFpsVerifiesAgainstReference) {
  auto d = Deploy(PipelineTvmAutorun(), fpga::Stratix10SX(), true);
  EXPECT_NO_THROW((void)d.EstimateFps(*image_, /*verify=*/true));
}

TEST_F(LeNetDeployment, ProfileEventsShowsS10mxWriteDominance) {
  // Figure 6.2: on the S10MX the write time dwarfs kernel time.
  auto mx = Deploy(PipelineBase(), fpga::Stratix10MX());
  auto breakdown = mx.ProfileEvents(*image_);
  EXPECT_GT(breakdown.write.us(), 100.0);
  auto sx = Deploy(PipelineBase(), fpga::Stratix10SX());
  auto sx_breakdown = sx.ProfileEvents(*image_);
  EXPECT_GT(breakdown.write.seconds() /
                (breakdown.write + breakdown.kernel).seconds(),
            sx_breakdown.write.seconds() /
                (sx_breakdown.write + sx_breakdown.kernel).seconds());
}

TEST_F(LeNetDeployment, GeneratedSourceIsCompleteProgram) {
  auto d = Deploy(PipelineAutorun(), fpga::Stratix10SX());
  const std::string src = d.GeneratedSource();
  EXPECT_NE(src.find("cl_intel_channels"), std::string::npos);
  EXPECT_NE(src.find("__kernel void k_conv1"), std::string::npos);
  EXPECT_NE(src.find("__kernel void k_softmax"), std::string::npos);
  EXPECT_NE(src.find("__attribute__((autorun))"), std::string::npos);
}

TEST_F(LeNetDeployment, RunOnFailedDeploymentThrows) {
  // Force a fit failure with an absurd cost model.
  DeployOptions o;
  o.mode = ExecutionMode::kPipelined;
  o.recipe = PipelineBase();
  o.board = fpga::Arria10();
  o.cost_model.kernel_base_alut = 100'000'000;
  auto d = Deployment::Compile(*net_, o);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.bitstream().status, fpga::SynthStatus::kFitError);
  EXPECT_THROW((void)d.Run(*image_), RuntimeApiError);
  EXPECT_THROW((void)d.ProfileOps(), RuntimeApiError);
}

// --- Folded ------------------------------------------------------------------

class MobileNetDeployment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(78);
    net_ = new graph::Graph(nets::BuildMobileNetV1(*rng_));
    image_ = new Tensor(nets::SyntheticImagenetImage(*rng_));
  }
  static void TearDownTestSuite() {
    delete rng_;
    delete net_;
    delete image_;
  }
  static Deployment Deploy(OptimizationRecipe recipe,
                           const fpga::BoardSpec& board) {
    DeployOptions o;
    o.mode = ExecutionMode::kFolded;
    o.recipe = std::move(recipe);
    o.board = board;
    o.functional_threads = HardwareThreads();
    return Deployment::Compile(*net_, o);
  }
  static Rng* rng_;
  static graph::Graph* net_;
  static Tensor* image_;
};

Rng* MobileNetDeployment::rng_ = nullptr;
graph::Graph* MobileNetDeployment::net_ = nullptr;
Tensor* MobileNetDeployment::image_ = nullptr;

TEST_F(MobileNetDeployment, BaseDoesNotFitArria10) {
  auto d = Deploy(FoldedBase(), fpga::Arria10());
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.bitstream().status, fpga::SynthStatus::kFitError);
}

TEST_F(MobileNetDeployment, OptimizedFitsAllBoards) {
  for (const auto& board : fpga::EvaluationBoards()) {
    auto d = Deploy(FoldedMobileNet(board.key), board);
    EXPECT_TRUE(d.ok()) << board.key << ": " << d.bitstream().status_detail;
  }
}

TEST_F(MobileNetDeployment, ParameterizationCollapsesKernelCount) {
  auto base = Deploy(FoldedBase(), fpga::Stratix10SX());
  auto opt = Deploy(FoldedMobileNet("s10sx"), fpga::Stratix10SX());
  // 45 per-layer kernels vs ~9 parameterized groups.
  EXPECT_GT(base.kernels().size(), 40u);
  EXPECT_LT(opt.kernels().size(), 12u);
  // Same number of runtime invocations either way (one per fused node).
  EXPECT_EQ(base.invocations().size(), opt.invocations().size());
}

TEST_F(MobileNetDeployment, FunctionalMatchesReference) {
  auto d = Deploy(FoldedMobileNet("s10sx"), fpga::Stratix10SX());
  auto r = d.Run(*image_, /*functional=*/true);
  const Tensor expected =
      graph::Execute(*net_, *image_, HardwareThreads());
  EXPECT_TRUE(Tensor::AllClose(r.output.Reshaped(expected.shape()), expected,
                               1e-3f, 1e-4f));
}

TEST_F(MobileNetDeployment, OptimizedImprovesBaseByOrdersOfMagnitude) {
  auto base = Deploy(FoldedBase(), fpga::Stratix10SX());
  auto opt = Deploy(FoldedMobileNet("s10sx"), fpga::Stratix10SX());
  const double speedup =
      opt.EstimateFps(*image_) / base.EstimateFps(*image_);
  // Paper: 178x; the model's baseline II differs somewhat, so accept a
  // generous band around two-to-three orders of magnitude.
  EXPECT_GT(speedup, 80.0);
  EXPECT_LT(speedup, 3000.0);
}

TEST_F(MobileNetDeployment, ProfileShowsPointwiseDominanceAndPadCost) {
  auto d = Deploy(FoldedMobileNet("s10sx"), fpga::Stratix10SX());
  const auto profile = d.ProfileOps();
  double pw_flops = 0, total_flops = 0;
  double pad_share = 0;
  for (const auto& e : profile) {
    total_flops += e.flops;
    if (e.op_class == "1x1 conv") pw_flops += e.flops;
    if (e.op_class == "pad") {
      pad_share = e.runtime_share;
      EXPECT_EQ(e.flops, 0.0);
    }
  }
  EXPECT_GT(pw_flops / total_flops, 0.9);  // 94.8% of FLOPs (Table 6.8)
  EXPECT_GT(pad_share, 0.05);              // zero-FLOP padding costs time
}

TEST_F(MobileNetDeployment, SymbolicKernelsShareHardwareAcrossLayers) {
  auto d = Deploy(FoldedMobileNet("s10sx"), fpga::Stratix10SX());
  // All 13 pointwise layers run on the same kernel index.
  int pw_kernel = -1;
  int pw_invocations = 0;
  for (const auto& inv : d.invocations()) {
    const auto& pk = d.kernels()[static_cast<std::size_t>(inv.kernel_index)];
    if (pk.op_class == "1x1 conv") {
      if (pw_kernel == -1) pw_kernel = inv.kernel_index;
      EXPECT_EQ(inv.kernel_index, pw_kernel);
      ++pw_invocations;
      EXPECT_FALSE(inv.bindings.empty());
    }
  }
  EXPECT_EQ(pw_invocations, 13);
}

TEST_F(MobileNetDeployment, HybridTailPipelinesClassifier) {
  // SS6.5/SS8.1: fold the convolutional body, pipeline the tail.
  auto folded = Deploy(FoldedMobileNet("s10sx"), fpga::Stratix10SX());
  auto recipe = FoldedMobileNet("s10sx");
  recipe.pipeline_tail = true;
  auto hybrid = Deploy(recipe, fpga::Stratix10SX());
  ASSERT_TRUE(hybrid.ok()) << hybrid.bitstream().status_detail;

  // The tail's weightless kernels became autorun channel stages.
  int autorun = 0, channelized = 0;
  for (const auto& inv : hybrid.invocations()) {
    if (inv.autorun) ++autorun;
    if (!inv.reads_channels.empty() || !inv.writes_channels.empty()) {
      ++channelized;
    }
  }
  // avg_pool still reads the folded body's output from global memory, so
  // only the fully channel-fed flatten goes autorun.
  EXPECT_EQ(autorun, 1);
  EXPECT_EQ(channelized, 4);  // avg_pool, flatten, fc, softmax

  // Functional results still match the reference.
  auto r = hybrid.Run(*image_, /*functional=*/true);
  const Tensor expected =
      graph::Execute(*net_, *image_, HardwareThreads());
  EXPECT_TRUE(Tensor::AllClose(r.output.Reshaped(expected.shape()), expected,
                               1e-3f, 1e-4f));

  // And the hybrid removes tail dispatch overhead: never slower.
  EXPECT_GE(hybrid.EstimateFps(*image_),
            0.99 * folded.EstimateFps(*image_));
}

TEST_F(LeNetDeployment, PipelinedBeatsFoldedOnSmallNetworks) {
  // Ch. 3's mode-selection claim, small-network half: with everything
  // on-chip, layer pipelining beats sequential global-memory execution.
  auto pipelined = Deploy(PipelineTvmAutorun(), fpga::Stratix10SX(), true);

  DeployOptions o;
  o.mode = ExecutionMode::kFolded;
  o.recipe = FoldedBase();
  o.recipe.name = "Folded-Optimized-LeNet";
  o.recipe.fuse_and_cache = true;
  o.recipe.unroll = true;  // same kernel optimizations, no channels
  o.board = fpga::Stratix10SX();
  auto folded = Deployment::Compile(*net_, o);
  ASSERT_TRUE(folded.ok()) << folded.bitstream().status_detail;

  // Throughputs are comparable (LeNet is tiny either way)...
  EXPECT_GT(pipelined.EstimateFps(*image_),
            0.8 * folded.EstimateFps(*image_));
  // ...but pipelining eliminates nearly all global activation traffic:
  // that headroom is what the paper's larger pipelined speedups come from.
  auto traffic = [](const Deployment& d) {
    double bytes = 0;
    for (const auto& inv : d.invocations()) {
      bytes += inv.stats.global_bytes_read + inv.stats.global_bytes_written;
    }
    return bytes;
  };
  EXPECT_LT(traffic(pipelined), 0.5 * traffic(folded));
}

TEST_F(MobileNetDeployment, PipelinedDoesNotFitLargeNetworks) {
  // Ch. 3's mode-selection claim, large-network half: pipelining needs
  // every layer's activations in on-chip buffers, which exhausts BRAM for
  // ImageNet-scale feature maps ("this limits deployment to relatively
  // small networks").
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineAutorun();
  o.board = fpga::Stratix10SX();  // even the largest board
  auto d = core::Deployment::Compile(*net_, o);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.bitstream().status, fpga::SynthStatus::kFitError);
  EXPECT_NE(d.bitstream().status_detail.find("RAM"), std::string::npos);
}

TEST(ResNetDeployment, SynthesisOutcomesMatchPaper) {
  Rng rng(79);
  graph::Graph net = nets::BuildResNet(18, rng);
  DeployOptions o;
  o.mode = ExecutionMode::kFolded;
  o.recipe = FoldedResNet();

  // Fits (and runs) on both Stratix 10s...
  o.board = fpga::Stratix10SX();
  auto sx = Deployment::Compile(net, o);
  EXPECT_TRUE(sx.ok()) << sx.bitstream().status_detail;
  o.board = fpga::Stratix10MX();
  auto mx = Deployment::Compile(net, o);
  EXPECT_TRUE(mx.ok()) << mx.bitstream().status_detail;
  // ...but never on the Arria 10 (Table 6.14: "na").
  o.board = fpga::Arria10();
  auto a10 = Deployment::Compile(net, o);
  EXPECT_FALSE(a10.ok());
  o.recipe = FoldedBase();
  auto a10_base = Deployment::Compile(net, o);
  EXPECT_FALSE(a10_base.ok());
}

TEST(ResNetDeployment, ResNet34SlowerThanResNet18) {
  Rng rng(80);
  graph::Graph r18 = nets::BuildResNet(18, rng);
  graph::Graph r34 = nets::BuildResNet(34, rng);
  DeployOptions o;
  o.mode = ExecutionMode::kFolded;
  o.recipe = FoldedResNet();
  o.board = fpga::Stratix10SX();
  auto d18 = Deployment::Compile(r18, o);
  auto d34 = Deployment::Compile(r34, o);
  Rng img_rng(81);
  Tensor image = nets::SyntheticImagenetImage(img_rng);
  const double fps18 = d18.EstimateFps(image);
  const double fps34 = d34.EstimateFps(image);
  EXPECT_GT(fps18, 1.3 * fps34);
  // Both use the same kernel set; ResNet-34 just invokes it more.
  EXPECT_EQ(d18.kernels().size(), d34.kernels().size());
  EXPECT_GT(d34.invocations().size(), d18.invocations().size());
}

}  // namespace
}  // namespace clflow::core
