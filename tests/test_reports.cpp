// Tests for the fit-report writer, the LSU taxonomy, and the host-program
// generator.
#include <gtest/gtest.h>

#include "core/host_codegen.hpp"
#include "fpga/report.hpp"
#include "ir/op_kernels.hpp"
#include "nets/nets.hpp"

namespace clflow {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(LsuTaxonomy, ClassifiesPerPaperRules) {
  // Dense input: repetitive -> cached burst-coalesced.
  auto dense = ir::BuildDenseKernel({.c1 = 64, .c2 = 16}, {}, "d");
  const auto dstats = ir::AnalyzeKernel(dense.kernel);
  bool saw_cached = false;
  for (const auto& s : dstats.accesses) {
    if (s.buffer == "in_vec") {
      EXPECT_EQ(s.lsu_type(), ir::LsuType::kBurstCoalescedCached);
      saw_cached = true;
    }
  }
  EXPECT_TRUE(saw_cached);

  // Pad loads: div/mod addressing -> non-aligned.
  auto pad = ir::BuildPadKernel({.c = 4, .h1 = 12, .w1 = 12, .pad = 1}, "p");
  const auto pstats = ir::AnalyzeKernel(pad.kernel);
  bool saw_nonaligned = false;
  for (const auto& s : pstats.accesses) {
    if (s.buffer == "in_fm" && !s.is_store) {
      EXPECT_EQ(s.lsu_type(), ir::LsuType::kBurstCoalescedNonAligned);
      saw_nonaligned = true;
    }
  }
  EXPECT_TRUE(saw_nonaligned);

  // Long flat copy reads degenerate to a streaming LSU.
  auto copy = ir::BuildCopyKernel(65536, "c");
  const auto cstats = ir::AnalyzeKernel(copy.kernel);
  for (const auto& s : cstats.accesses) {
    if (!s.is_store) {
      EXPECT_EQ(s.lsu_type(), ir::LsuType::kStreaming);
    } else {
      EXPECT_EQ(s.lsu_type(), ir::LsuType::kBurstCoalesced);
    }
  }
}

TEST(FitReport, ContainsAllSections) {
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 4, .h1 = 12, .w1 = 12, .k = 4, .f = 3, .stride = 1,
       .has_bias = true},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true},
      "report_conv");
  const auto bs = fpga::Synthesize({{&bk.kernel, {}}}, fpga::Stratix10SX());
  const std::string report = fpga::WriteFitReport(bs);
  EXPECT_TRUE(Contains(report, "clflow fit report"));
  EXPECT_TRUE(Contains(report, "Stratix 10 SX"));
  EXPECT_TRUE(Contains(report, "status: ok"));
  EXPECT_TRUE(Contains(report, "resource totals"));
  EXPECT_TRUE(Contains(report, "report_conv"));
  EXPECT_TRUE(Contains(report, "LSU inventory"));
  EXPECT_TRUE(Contains(report, "burst-coalesced"));
  EXPECT_TRUE(Contains(report, "dynamic estimates"));
}

TEST(FitReport, FailedSynthesisReportsVerdict) {
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 256, .h1 = 56, .w1 = 56, .k = 256, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_c1 = 16,
       .tile_w2 = 8, .tile_c2 = 16},
      "huge");
  const auto bs = fpga::Synthesize({{&bk.kernel, {}}}, fpga::Arria10());
  const std::string report = fpga::WriteFitReport(bs);
  EXPECT_TRUE(Contains(report, "status: fit_error"));
  // No dynamic section for a design that never routed.
  EXPECT_FALSE(Contains(report, "dynamic estimates"));
}

TEST(HostCodegen, EmitsCompleteFoldedProgram) {
  Rng rng(31);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kFolded;
  o.recipe = core::FoldedBase();
  o.board = fpga::Stratix10SX();
  auto d = core::Deployment::Compile(net, o);
  ASSERT_TRUE(d.ok());

  const std::string src = core::EmitHostProgram(d);
  EXPECT_TRUE(Contains(src, "#include <CL/cl.h>"));
  EXPECT_TRUE(Contains(src, "clCreateContext"));
  EXPECT_TRUE(Contains(src, "clCreateCommandQueue"));
  EXPECT_TRUE(Contains(src, "CLFLOW_PROFILE"));
  EXPECT_TRUE(Contains(src, "clEnqueueWriteBuffer"));
  EXPECT_TRUE(Contains(src, "clEnqueueTask"));
  EXPECT_TRUE(Contains(src, "clEnqueueReadBuffer"));
  // Weight buffers for both convs and all three dense layers.
  EXPECT_TRUE(Contains(src, "conv1.w"));
  EXPECT_TRUE(Contains(src, "dense3.w"));
}

TEST(HostCodegen, SymbolicArgumentsAreSetPerLayer) {
  Rng rng(32);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kFolded;
  o.recipe = core::FoldedMobileNet("s10sx");
  o.board = fpga::Stratix10SX();
  auto d = core::Deployment::Compile(net, o);
  ASSERT_TRUE(d.ok());

  const std::string src = core::EmitHostProgram(d);
  // Symbolic dims set as cl_int kernel args, with names annotated.
  EXPECT_TRUE(Contains(src, "// rc_dim"));
  EXPECT_TRUE(Contains(src, "// xx_dim"));
  EXPECT_TRUE(Contains(src, "// act_sel"));
  // The pointwise kernel object is created once and re-used.
  const std::string create = "clCreateKernel(program, \"k_conv1_s1_b1\"";
  const auto first = src.find(create);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(src.find(create, first + 1), std::string::npos);
}

TEST(HostCodegen, ConcurrentExecutionCreatesQueuePerKernel) {
  Rng rng(33);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineAutorun();
  o.recipe.concurrent_execution = true;
  o.board = fpga::Stratix10SX();
  auto d = core::Deployment::Compile(net, o);
  ASSERT_TRUE(d.ok());
  const std::string src = core::EmitHostProgram(d);
  EXPECT_TRUE(Contains(src, "command queue per kernel"));
  EXPECT_TRUE(Contains(src, "cl_command_queue q5"));
  EXPECT_TRUE(Contains(src, "autorun"));
}

}  // namespace
}  // namespace clflow
