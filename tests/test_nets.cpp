// Tests for the model zoo: architectures must match the paper's Tables
// 2.1-2.3, and cost totals must land on the reported FLOP/parameter counts.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/graph.hpp"
#include "nets/nets.hpp"

namespace clflow::nets {
namespace {

using graph::Graph;
using graph::OpKind;

std::int64_t CountKind(const Graph& g, OpKind kind) {
  std::int64_t n = 0;
  for (const auto& node : g.nodes()) {
    if (node.kind == kind) ++n;
  }
  return n;
}

const graph::Node& NodeByName(const Graph& g, const std::string& name) {
  for (const auto& node : g.nodes()) {
    if (node.name == name) return node;
  }
  throw std::runtime_error("no node named " + name);
}

TEST(LeNet5, ArchitectureMatchesTable21) {
  Rng rng(1);
  Graph g = BuildLeNet5(rng);
  EXPECT_EQ(NodeByName(g, "conv1").output_shape, (Shape{1, 6, 26, 26}));
  EXPECT_EQ(NodeByName(g, "pool1").output_shape, (Shape{1, 6, 13, 13}));
  EXPECT_EQ(NodeByName(g, "conv2").output_shape, (Shape{1, 16, 11, 11}));
  EXPECT_EQ(NodeByName(g, "pool2").output_shape, (Shape{1, 16, 5, 5}));
  EXPECT_EQ(NodeByName(g, "flatten").output_shape, (Shape{1, 400}));
  EXPECT_EQ(NodeByName(g, "dense1").output_shape, (Shape{1, 120}));
  EXPECT_EQ(NodeByName(g, "dense2").output_shape, (Shape{1, 84}));
  EXPECT_EQ(NodeByName(g, "softmax").output_shape, (Shape{1, 10}));
}

TEST(LeNet5, CostNearPaperNumbers) {
  Rng rng(2);
  const auto cost = graph::GraphCost(BuildLeNet5(rng));
  // Paper: 389K FP ops, 60K parameters (Table 6.9). Conventions for
  // counting pool/activation ops differ slightly; stay within 15%.
  EXPECT_NEAR(cost.flops, 389e3, 0.15 * 389e3);
  EXPECT_NEAR(static_cast<double>(cost.params), 60e3, 0.05 * 60e3);
}

TEST(LeNet5, ExecutesToProbabilities) {
  Rng rng(3);
  Graph g = BuildLeNet5(rng);
  Tensor img = SyntheticMnistImage(rng);
  Tensor out = graph::Execute(g, img, 2);
  ASSERT_EQ(out.shape(), (Shape{1, 10}));
  float sum = 0;
  for (float v : out.data()) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(MobileNetV1, ArchitectureMatchesTable22) {
  Rng rng(4);
  Graph g = BuildMobileNetV1(rng);
  EXPECT_EQ(NodeByName(g, "conv1").output_shape, (Shape{1, 32, 112, 112}));
  EXPECT_EQ(NodeByName(g, "conv2_dw").output_shape, (Shape{1, 32, 112, 112}));
  EXPECT_EQ(NodeByName(g, "conv2_pw").output_shape, (Shape{1, 64, 112, 112}));
  EXPECT_EQ(NodeByName(g, "conv3_dw").output_shape, (Shape{1, 64, 56, 56}));
  EXPECT_EQ(NodeByName(g, "conv14_pw").output_shape, (Shape{1, 1024, 7, 7}));
  EXPECT_EQ(NodeByName(g, "avg_pool").output_shape, (Shape{1, 1024, 1, 1}));
  EXPECT_EQ(NodeByName(g, "fc").output_shape, (Shape{1, 1000}));
  // 13 depthwise + 1 standard entry conv + 13 pointwise.
  EXPECT_EQ(CountKind(g, OpKind::kDepthwiseConv2d), 13);
  EXPECT_EQ(CountKind(g, OpKind::kConv2d), 14);
}

TEST(MobileNetV1, CostNearPaperNumbers) {
  Rng rng(5);
  const auto cost = graph::GraphCost(BuildMobileNetV1(rng));
  // Paper: 1.11G FP ops, 4.2M parameters (Table 6.11).
  EXPECT_NEAR(cost.flops, 1.11e9, 0.06 * 1.11e9);
  EXPECT_NEAR(static_cast<double>(cost.params), 4.2e6, 0.05 * 4.2e6);
}

TEST(MobileNetV1, PointwiseConvsDominate) {
  // 1x1 convolutions are 94.86% of multiply-adds (SS2.1.4).
  Rng rng(6);
  Graph g = BuildMobileNetV1(rng);
  double pw = 0, total = 0;
  for (const auto& n : g.nodes()) {
    const double f = graph::NodeCost(n, g).flops;
    total += f;
    if (n.kind == OpKind::kConv2d && n.window == 1) pw += f;
  }
  EXPECT_NEAR(pw / total, 0.9486, 0.02);
}

class ResNetDepth : public ::testing::TestWithParam<int> {};

TEST_P(ResNetDepth, ArchitectureMatchesTable23) {
  const int depth = GetParam();
  Rng rng(7);
  Graph g = BuildResNet(depth, rng);
  EXPECT_EQ(NodeByName(g, "conv1").output_shape, (Shape{1, 64, 112, 112}));
  EXPECT_EQ(NodeByName(g, "pool1").output_shape, (Shape{1, 64, 56, 56}));
  EXPECT_EQ(NodeByName(g, "conv2_1_b").output_shape, (Shape{1, 64, 56, 56}));
  EXPECT_EQ(NodeByName(g, "conv3_1_a").output_shape, (Shape{1, 128, 28, 28}));
  EXPECT_EQ(NodeByName(g, "conv5_1_b").output_shape, (Shape{1, 512, 7, 7}));
  EXPECT_EQ(NodeByName(g, "avg_pool").output_shape, (Shape{1, 512, 1, 1}));
  EXPECT_EQ(NodeByName(g, "fc").output_shape, (Shape{1, 1000}));

  const int blocks = depth == 18 ? 8 : 16;
  EXPECT_EQ(CountKind(g, OpKind::kAdd), blocks);
  // Two 3x3 per block + conv1 + 3 projection shortcuts.
  EXPECT_EQ(CountKind(g, OpKind::kConv2d), 2 * blocks + 1 + 3);
}

TEST_P(ResNetDepth, CostNearPaperNumbers) {
  const int depth = GetParam();
  Rng rng(8);
  const auto cost = graph::GraphCost(BuildResNet(depth, rng));
  // Paper Table 6.14: 3.66G / 11.7M (ResNet-18), 7.36G / 21.8M (ResNet-34).
  const double flops = depth == 18 ? 3.66e9 : 7.36e9;
  const double params = depth == 18 ? 11.7e6 : 21.8e6;
  EXPECT_NEAR(cost.flops, flops, 0.06 * flops);
  EXPECT_NEAR(static_cast<double>(cost.params), params, 0.05 * params);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetDepth, ::testing::Values(18, 34));

TEST(ResNet, RejectsUnsupportedDepth) {
  Rng rng(9);
  EXPECT_THROW((void)BuildResNet(50, rng), Error);
}

TEST(SyntheticInputs, DeterministicAndInRange) {
  Rng a(1), b(1);
  Tensor i1 = SyntheticMnistImage(a);
  Tensor i2 = SyntheticMnistImage(b);
  EXPECT_EQ(Tensor::MaxAbsDiff(i1, i2), 0.0f);
  for (float v : i1.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  Rng c(2);
  Tensor img = SyntheticImagenetImage(c);
  EXPECT_EQ(img.shape(), (Shape{1, 3, 224, 224}));
}

}  // namespace
}  // namespace clflow::nets
