// Unit tests for IR expressions, statements, and the interpreter.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "ir/interp.hpp"
#include "ir/passes.hpp"
#include "ir/stmt.hpp"

namespace clflow::ir {
namespace {

TEST(Expr, ConstFolding) {
  auto e = Simplify(Add(IntImm(2), Mul(IntImm(3), IntImm(4))));
  std::int64_t v = 0;
  ASSERT_TRUE(IsConstInt(e, &v));
  EXPECT_EQ(v, 14);
}

TEST(Expr, AlgebraicIdentities) {
  auto x = MakeVar("x");
  std::int64_t v = 0;
  // x * 1 -> x
  auto e1 = Simplify(Mul(VarRef(x), IntImm(1)));
  EXPECT_EQ(e1->kind, ExprKind::kVar);
  // x + 0 -> x
  auto e2 = Simplify(Add(VarRef(x), IntImm(0)));
  EXPECT_EQ(e2->kind, ExprKind::kVar);
  // x * 0 -> 0
  auto e3 = Simplify(Mul(VarRef(x), IntImm(0)));
  ASSERT_TRUE(IsConstInt(e3, &v));
  EXPECT_EQ(v, 0);
  // x / 1 -> x
  auto e4 = Simplify(Div(VarRef(x), IntImm(1)));
  EXPECT_EQ(e4->kind, ExprKind::kVar);
}

TEST(Expr, DivModFolding) {
  std::int64_t v = 0;
  ASSERT_TRUE(IsConstInt(Simplify(Div(IntImm(17), IntImm(5))), &v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(IsConstInt(Simplify(Mod(IntImm(17), IntImm(5))), &v));
  EXPECT_EQ(v, 2);
}

TEST(Expr, MinMaxFolding) {
  std::int64_t v = 0;
  ASSERT_TRUE(IsConstInt(Simplify(Min(IntImm(3), IntImm(7))), &v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(IsConstInt(Simplify(Max(IntImm(3), IntImm(7))), &v));
  EXPECT_EQ(v, 7);
}

TEST(Expr, SubstituteReplacesVariable) {
  auto x = MakeVar("x");
  auto y = MakeVar("y");
  auto e = Add(Mul(VarRef(x), IntImm(4)), VarRef(y));
  auto sub = Simplify(Substitute(e, x, IntImm(3)));
  // 3*4 + y -> 12 + y
  EXPECT_EQ(ToString(sub), "(12 + y)");
  EXPECT_FALSE(UsesVar(sub, x));
  EXPECT_TRUE(UsesVar(sub, y));
}

TEST(Expr, DtypePropagation) {
  auto f = Mul(FloatImm(2.0), FloatImm(3.0));
  EXPECT_EQ(f->dtype, ScalarType::kFloat32);
  auto i = Mul(IntImm(2), IntImm(3));
  EXPECT_EQ(i->dtype, ScalarType::kInt32);
  auto cmp = Binary(BinOp::kLt, FloatImm(1.0), FloatImm(2.0));
  EXPECT_EQ(cmp->dtype, ScalarType::kInt32);
}

TEST(Expr, UsesShapeParamDetection) {
  auto p = MakeVar("n", VarKind::kShapeParam);
  auto l = MakeVar("i");
  EXPECT_TRUE(UsesShapeParam(Add(VarRef(l), VarRef(p))));
  EXPECT_FALSE(UsesShapeParam(Add(VarRef(l), IntImm(1))));
}

TEST(Expr, LoadArityChecked) {
  auto buf = MakeBuffer("b", {IntImm(4), IntImm(4)});
  EXPECT_THROW((void)Load(buf, {IntImm(0)}), Error);
}

TEST(Stmt, StoreArityChecked) {
  auto buf = MakeBuffer("b", {IntImm(4)});
  EXPECT_THROW((void)Store(buf, {IntImm(0), IntImm(1)}, FloatImm(0)), Error);
}

TEST(Stmt, PrinterShowsAnnotations) {
  auto i = MakeVar("i");
  auto buf = MakeBuffer("b", {IntImm(8)});
  ForAnnotation ann;
  ann.unroll = -1;
  auto loop = For(i, IntImm(0), IntImm(8),
                  Store(buf, {VarRef(i)}, FloatImm(1.0)), ann);
  EXPECT_NE(ToString(loop).find("[unroll]"), std::string::npos);
}

TEST(Kernel, ValidateRejectsAutorunWithArgs) {
  Kernel k;
  k.name = "bad";
  auto buf = MakeBuffer("b", {IntImm(4)}, MemScope::kGlobal, true);
  k.buffer_args.push_back(buf);
  auto i = MakeVar("i");
  k.body = For(i, IntImm(0), IntImm(4), Store(buf, {VarRef(i)}, FloatImm(0)));
  k.autorun = true;
  EXPECT_THROW(k.Validate(), IrError);
  k.autorun = false;
  EXPECT_NO_THROW(k.Validate());
}

TEST(Kernel, ValidateRejectsUndeclaredBuffers) {
  Kernel k;
  k.name = "bad";
  auto declared = MakeBuffer("a", {IntImm(4)}, MemScope::kGlobal, true);
  auto rogue = MakeBuffer("rogue", {IntImm(4)}, MemScope::kGlobal, true);
  k.buffer_args.push_back(declared);
  auto i = MakeVar("i");
  k.body = For(i, IntImm(0), IntImm(4),
               Store(declared, {VarRef(i)}, Load(rogue, {VarRef(i)})));
  EXPECT_THROW(k.Validate(), IrError);
}

// --- Interpreter ------------------------------------------------------------

TEST(Interp, VectorAdd) {
  // Listing 4.1: c[i] = a[i] + b[i].
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto b = MakeBuffer("b", {IntImm(8)}, MemScope::kGlobal, true);
  auto c = MakeBuffer("c", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  Kernel k;
  k.name = "vadd";
  k.buffer_args = {a, b, c};
  k.body = For(i, IntImm(0), IntImm(8),
               Store(c, {VarRef(i)},
                     Add(Load(a, {VarRef(i)}), Load(b, {VarRef(i)}))));

  std::vector<float> va{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> vb{10, 20, 30, 40, 50, 60, 70, 80};
  std::vector<float> vc(8, 0.0f);
  InterpEnv env;
  env.BindBuffer(a, va);
  env.BindBuffer(b, vb);
  env.BindBuffer(c, vc);
  RunKernel(k, env);
  for (int j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(vc[j], 11.0f * (j + 1));
}

TEST(Interp, MatrixVectorListing43) {
  // Listing 4.3: c = Yx with 4x3 Y.
  auto x = MakeBuffer("x", {IntImm(3)}, MemScope::kGlobal, true);
  auto y = MakeBuffer("Y", {IntImm(4), IntImm(3)}, MemScope::kGlobal, true);
  auto c = MakeBuffer("c", {IntImm(4)}, MemScope::kGlobal, true);
  auto sum = MakeBuffer("sum", {IntImm(1)}, MemScope::kPrivate);
  auto i = MakeVar("i");
  auto kk = MakeVar("k");
  Kernel k;
  k.name = "mv";
  k.buffer_args = {x, y, c};
  k.local_buffers = {sum};
  k.body = For(
      i, IntImm(0), IntImm(4),
      Block({Store(sum, {IntImm(0)}, FloatImm(0.0)),
             For(kk, IntImm(0), IntImm(3),
                 Store(sum, {IntImm(0)},
                       Add(Load(sum, {IntImm(0)}),
                           Mul(Load(x, {VarRef(kk)}),
                               Load(y, {VarRef(i), VarRef(kk)}))))),
             Store(c, {VarRef(i)}, Load(sum, {IntImm(0)}))}));

  std::vector<float> vx{1, 2, 3};
  std::vector<float> vy{1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1};
  std::vector<float> vc(4, -1.0f);
  InterpEnv env;
  env.BindBuffer(x, vx);
  env.BindBuffer(y, vy);
  env.BindBuffer(c, vc);
  RunKernel(k, env);
  EXPECT_FLOAT_EQ(vc[0], 1);
  EXPECT_FLOAT_EQ(vc[1], 2);
  EXPECT_FLOAT_EQ(vc[2], 3);
  EXPECT_FLOAT_EQ(vc[3], 6);
}

TEST(Interp, ChannelsConnectKernels) {
  // Listing 4.13: A writes a[i]+1 into c0; B multiplies by 0.35 into c1;
  // C divides by -1.1 into d.
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto d = MakeBuffer("d", {IntImm(8)}, MemScope::kGlobal, true);
  auto c0 = MakeBuffer("c0", {IntImm(1)}, MemScope::kChannel);
  auto c1 = MakeBuffer("c1", {IntImm(1)}, MemScope::kChannel);
  c1->channel_depth = 8;

  auto i = MakeVar("i");
  Kernel ka;
  ka.name = "A";
  ka.buffer_args = {a};
  ka.channels_written = {c0};
  ka.body = For(i, IntImm(0), IntImm(8),
                WriteChannel(c0, Add(Load(a, {VarRef(i)}), FloatImm(1.0))));

  auto j = MakeVar("i");
  Kernel kb;
  kb.name = "B";
  kb.channels_read = {c0};
  kb.channels_written = {c1};
  kb.autorun = true;
  kb.body = For(j, IntImm(0), IntImm(8),
                WriteChannel(c1, Mul(ReadChannel(c0), FloatImm(0.35))));

  auto m = MakeVar("i");
  Kernel kc;
  kc.name = "C";
  kc.buffer_args = {d};
  kc.channels_read = {c1};
  kc.body = For(m, IntImm(0), IntImm(8),
                Store(d, {VarRef(m)},
                      Div(ReadChannel(c1), FloatImm(-1.1))));

  std::vector<float> va{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> vd(8, 0.0f);
  InterpEnv env;
  env.BindBuffer(a, va);
  env.BindBuffer(d, vd);
  RunKernel(ka, env);
  RunKernel(kb, env);
  RunKernel(kc, env);
  for (int t = 0; t < 8; ++t) {
    EXPECT_NEAR(vd[t], (va[t] + 1.0f) * 0.35f / -1.1f, 1e-6f);
  }
  EXPECT_EQ(env.PendingChannelElements(), 0u);
}

TEST(Interp, ReadFromEmptyChannelThrows) {
  auto chan = MakeBuffer("c", {IntImm(1)}, MemScope::kChannel);
  auto out = MakeBuffer("o", {IntImm(1)}, MemScope::kGlobal, true);
  Kernel k;
  k.name = "consumer";
  k.buffer_args = {out};
  k.channels_read = {chan};
  k.body = Store(out, {IntImm(0)}, ReadChannel(chan));
  std::vector<float> vo(1);
  InterpEnv env;
  env.BindBuffer(out, vo);
  EXPECT_THROW(RunKernel(k, env), IrError);
}

TEST(Interp, SymbolicShapesNeedBindings) {
  auto n = MakeVar("n", VarKind::kShapeParam);
  auto buf = MakeBuffer("b", {VarRef(n)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  Kernel k;
  k.name = "fill";
  k.buffer_args = {buf};
  k.scalar_args = {n};
  k.body = For(i, IntImm(0), VarRef(n), Store(buf, {VarRef(i)}, FloatImm(2)));

  std::vector<float> v(5, 0.0f);
  InterpEnv env;
  env.BindBuffer(buf, v);
  EXPECT_THROW(RunKernel(k, env), IrError);  // n unbound
  env.BindVar(n, 5);
  RunKernel(k, env);
  for (float e : v) EXPECT_FLOAT_EQ(e, 2.0f);
}

TEST(Interp, SelectAndIf) {
  auto buf = MakeBuffer("b", {IntImm(4)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  // b[i] = i >= 2 ? 1 : 0
  Kernel k;
  k.name = "sel";
  k.buffer_args = {buf};
  k.body = For(i, IntImm(0), IntImm(4),
               Store(buf, {VarRef(i)},
                     Select(Binary(BinOp::kGe, VarRef(i), IntImm(2)),
                            FloatImm(1.0), FloatImm(0.0))));
  std::vector<float> v(4);
  InterpEnv env;
  env.BindBuffer(buf, v);
  RunKernel(k, env);
  EXPECT_FLOAT_EQ(v[0], 0);
  EXPECT_FLOAT_EQ(v[1], 0);
  EXPECT_FLOAT_EQ(v[2], 1);
  EXPECT_FLOAT_EQ(v[3], 1);
}

TEST(Interp, ExpIntrinsic) {
  auto in = MakeBuffer("x", {IntImm(1)}, MemScope::kGlobal, true);
  auto out = MakeBuffer("y", {IntImm(1)}, MemScope::kGlobal, true);
  Kernel k;
  k.name = "e";
  k.buffer_args = {in, out};
  k.body = Store(out, {IntImm(0)},
                 CallIntrinsic("exp", {Load(in, {IntImm(0)})}));
  std::vector<float> vi{1.5f}, vo{0.0f};
  InterpEnv env;
  env.BindBuffer(in, vi);
  env.BindBuffer(out, vo);
  RunKernel(k, env);
  EXPECT_NEAR(vo[0], std::exp(1.5f), 1e-5f);
}

}  // namespace
}  // namespace clflow::ir
