// Tests for the comparison networks (AlexNet, VGG-A) and the Winograd
// convolution used in the SS6.6 analysis.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "cpu/ops.hpp"
#include "nets/nets.hpp"

namespace clflow {
namespace {

const graph::Node& NodeByName(const graph::Graph& g, const std::string& name) {
  for (const auto& n : g.nodes()) {
    if (n.name == name) return n;
  }
  throw std::runtime_error("no node named " + name);
}

TEST(AlexNet, ArchitectureAndCost) {
  Rng rng(1);
  graph::Graph g = nets::BuildAlexNet(rng);
  EXPECT_EQ(NodeByName(g, "conv1").output_shape, (Shape{1, 96, 55, 55}));
  EXPECT_EQ(NodeByName(g, "pool1").output_shape, (Shape{1, 96, 27, 27}));
  EXPECT_EQ(NodeByName(g, "conv2").output_shape, (Shape{1, 256, 27, 27}));
  EXPECT_EQ(NodeByName(g, "conv5").output_shape, (Shape{1, 256, 13, 13}));
  EXPECT_EQ(NodeByName(g, "flatten").output_shape, (Shape{1, 9216}));
  EXPECT_EQ(NodeByName(g, "fc8").output_shape, (Shape{1, 1000}));
  const auto cost = graph::GraphCost(g);
  // The paper cites DNNWeaver's AlexNet at 1.33G FP ops; the ungrouped
  // variant computes about 2.2G (grouping halves conv2/4/5).
  EXPECT_NEAR(cost.flops, 2.2e9, 0.2e9);
  EXPECT_NEAR(static_cast<double>(cost.params), 61e6, 2e6);
}

TEST(AlexNet, FoldedDeploymentOnA10) {
  // The DNNWeaver comparison platform (Table 6.19) is the Arria 10.
  Rng rng(2);
  graph::Graph g = nets::BuildAlexNet(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kFolded;
  o.recipe = core::FoldedResNet();  // 3x3-centric kernels suit AlexNet's tail
  o.recipe.conv3x3 = {.c1 = 8, .w2 = 1, .c2 = 1};
  o.recipe.conv_large = {.c1 = 1, .w2 = 1, .c2 = 1};
  o.board = fpga::Stratix10SX();
  auto d = core::Deployment::Compile(g, o);
  ASSERT_TRUE(d.ok()) << d.bitstream().status_detail;
  Tensor image = Tensor::Full(Shape{1, 3, 227, 227}, 0.1f);
  EXPECT_GT(d.EstimateFps(image), 0.5);
}

TEST(VggA, ArchitectureAndCost) {
  Rng rng(3);
  graph::Graph g = nets::BuildVggA(rng);
  EXPECT_EQ(NodeByName(g, "conv1").output_shape, (Shape{1, 64, 224, 224}));
  EXPECT_EQ(NodeByName(g, "pool1").output_shape, (Shape{1, 64, 112, 112}));
  EXPECT_EQ(NodeByName(g, "conv8").output_shape, (Shape{1, 512, 14, 14}));
  EXPECT_EQ(NodeByName(g, "pool8").output_shape, (Shape{1, 512, 7, 7}));
  EXPECT_EQ(NodeByName(g, "flatten").output_shape, (Shape{1, 25088}));
  const auto cost = graph::GraphCost(g);
  EXPECT_NEAR(cost.flops, 15.2e9, 1.0e9);
  EXPECT_NEAR(static_cast<double>(cost.params), 133e6, 3e6);
}

// --- Winograd -------------------------------------------------------------------

TEST(Winograd, MatchesDirectConvolution) {
  Rng rng(4);
  Tensor input = Tensor::Random(Shape{1, 6, 10, 10}, rng);
  Tensor w = Tensor::Random(Shape{4, 6, 3, 3}, rng);
  Tensor bias = Tensor::Random(Shape{4}, rng);
  Tensor direct = cpu::Conv2d(input, w, bias,
                              {.stride = 1, .activation = Activation::kRelu});
  Tensor wino = cpu::Conv2dWinograd(input, w, bias, Activation::kRelu, 2);
  EXPECT_EQ(wino.shape(), direct.shape());
  // Winograd reassociates; allow small fp drift.
  EXPECT_LT(Tensor::MaxRelDiff(wino, direct, 1e-3f), 1e-3f);
}

TEST(Winograd, SweepOverShapes) {
  Rng rng(5);
  for (const auto& [c1, k, h] : std::vector<std::tuple<int, int, int>>{
           {1, 1, 6}, {3, 8, 8}, {16, 4, 16}}) {
    Tensor input = Tensor::Random(Shape{1, c1, h, h}, rng);
    Tensor w = Tensor::Random(Shape{k, c1, 3, 3}, rng);
    Tensor direct = cpu::Conv2d(input, w, Tensor(), {});
    Tensor wino =
        cpu::Conv2dWinograd(input, w, Tensor(), Activation::kNone);
    EXPECT_LT(Tensor::MaxRelDiff(wino, direct, 1e-3f), 1e-3f)
        << c1 << "x" << h << "->" << k;
  }
}

TEST(Winograd, RejectsUnsupportedShapes) {
  Rng rng(6);
  Tensor input = Tensor::Random(Shape{1, 2, 9, 9}, rng);  // odd output
  Tensor w3 = Tensor::Random(Shape{2, 2, 3, 3}, rng);
  EXPECT_THROW(
      (void)cpu::Conv2dWinograd(input, w3, Tensor(), Activation::kNone),
      ShapeError);
  Tensor input_ok = Tensor::Random(Shape{1, 2, 10, 10}, rng);
  Tensor w5 = Tensor::Random(Shape{2, 2, 5, 5}, rng);
  EXPECT_THROW(
      (void)cpu::Conv2dWinograd(input_ok, w5, Tensor(), Activation::kNone),
      ShapeError);
}

TEST(Winograd, PointwiseCannotBenefit) {
  // The paper's point (SS6.6.1): 1x1 convolutions are outside Winograd's
  // domain entirely.
  Rng rng(7);
  Tensor input = Tensor::Random(Shape{1, 4, 8, 8}, rng);
  Tensor w1 = Tensor::Random(Shape{4, 4, 1, 1}, rng);
  EXPECT_THROW(
      (void)cpu::Conv2dWinograd(input, w1, Tensor(), Activation::kNone),
      ShapeError);
}

}  // namespace
}  // namespace clflow
