// Tests for the obs v2 streaming-telemetry core: log-bucketed histograms
// (bounded memory, <1% quantile error, deterministic shard merges) and
// windowed time series on the simulated clock (window-boundary edge
// cases, clock jumps, carry-forward gauges, digest stability at any
// thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/timeseries.hpp"

namespace clflow::obs {
namespace {

// ------------------------------------------------------- LogHistogram

double ExactQuantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  rank = std::min(std::max<std::size_t>(rank, 1), v.size());
  return v[rank - 1];
}

TEST(LogHistogram, TracksExactCountSumMinMax) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(LogHistogram, QuantilesWithinOnePercentOfExact) {
  // A long-tailed latency-like distribution across 4 decades: the gamma
  // = 1.02 bucketing must keep every common quantile within 1% relative
  // error of the exact nearest-rank answer.
  Rng rng(2021);
  LogHistogram h;
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.NextDouble() * 9.0);  // [1, e^9)
    h.Observe(v);
    exact.push_back(v);
  }
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double want = ExactQuantile(exact, q);
    const double got = h.Quantile(q);
    EXPECT_LT(std::abs(got - want) / want, 0.01) << "q=" << q;
  }
}

TEST(LogHistogram, BoundedBucketsRegardlessOfObservations) {
  Rng rng(7);
  LogHistogram h;
  for (int i = 0; i < 100000; ++i) {
    h.Observe(std::exp(rng.NextDouble() * 9.0));
  }
  // 4 decades at 2% resolution is a few hundred buckets, never 100k.
  EXPECT_LT(h.bucket_count(), 600u);
}

TEST(LogHistogram, ZeroAndNegativeLandInTheZeroBucket) {
  LogHistogram h;
  h.Observe(0.0);
  h.Observe(-3.0);
  h.Observe(5.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  // Rank 1 and 2 are the non-positive observations.
  EXPECT_LE(h.Quantile(0.5), 0.0);
}

TEST(LogHistogram, MergeMatchesSingleStreamExactly) {
  // Sharded observation + ordered merge must be indistinguishable from
  // one stream: identical digests, so identical quantiles.
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(std::exp(rng.NextDouble() * 6.0));
  }
  LogHistogram whole;
  for (double v : values) whole.Observe(v);

  for (int shards : {2, 3, 8}) {
    // Deterministic round-robin shard assignment; each shard observes its
    // slice concurrently (bucket maps are per-shard, no sharing).
    std::vector<LogHistogram> parts(static_cast<std::size_t>(shards));
    ParallelFor(0, shards, shards, [&](std::int64_t s) {
      for (std::size_t i = static_cast<std::size_t>(s); i < values.size();
           i += static_cast<std::size_t>(shards)) {
        parts[static_cast<std::size_t>(s)].Observe(values[i]);
      }
    });
    LogHistogram merged;
    for (const LogHistogram& p : parts) merged.MergeFrom(p);
    EXPECT_EQ(merged.Digest(), whole.Digest()) << shards << " shards";
    EXPECT_DOUBLE_EQ(merged.Quantile(0.99), whole.Quantile(0.99));
  }
}

// -------------------------------------------------------- TimeSeries

WindowSpec MsSpec(std::size_t windows = 8) {
  return WindowSpec{SimTime::Ms(1.0), windows};
}

TEST(TimeSeries, CounterAccumulatesWithinAWindow) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec());
  ts.Record(SimTime::Us(100.0));
  ts.Record(SimTime::Us(900.0), 2.0);
  const auto windows = ts.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].value, 3.0);
  EXPECT_EQ(windows[0].count, 2);
  EXPECT_DOUBLE_EQ(ts.Total(), 3.0);
}

TEST(TimeSeries, ClockJumpZeroFillsEmptyWindows) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec());
  ts.Record(SimTime::Ms(0.5));
  ts.Record(SimTime::Ms(5.5));  // jumps over windows 1..4
  const auto windows = ts.Windows();
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_DOUBLE_EQ(windows[0].value, 1.0);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(windows[i].value, 0.0) << "window " << i;
    EXPECT_EQ(windows[i].count, 0) << "window " << i;
  }
  EXPECT_DOUBLE_EQ(windows[5].value, 1.0);
}

TEST(TimeSeries, RingEvictsOldWindowsButKeepsTotals) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec(4));
  for (int w = 0; w < 10; ++w) {
    ts.Record(SimTime::Ms(static_cast<double>(w) + 0.5));
  }
  EXPECT_EQ(ts.Windows().size(), 4u);   // ring bound
  EXPECT_DOUBLE_EQ(ts.Total(), 10.0);   // totals survive eviction
  EXPECT_EQ(ts.base_index(), 6);
  EXPECT_EQ(ts.last_index(), 9);
}

TEST(TimeSeries, LateRecordsAreDroppedAndCounted) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec(4));
  ts.Record(SimTime::Ms(9.5));
  ts.Record(SimTime::Ms(1.5));  // window 1 long evicted
  EXPECT_EQ(ts.dropped_late(), 1);
  EXPECT_DOUBLE_EQ(ts.Total(), 1.0);  // the late record is not folded in
}

TEST(TimeSeries, SumOverLastAndRange) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec(8));
  for (int w = 0; w < 6; ++w) {
    ts.Record(SimTime::Ms(static_cast<double>(w) + 0.5),
              static_cast<double>(w + 1));
  }
  EXPECT_DOUBLE_EQ(ts.SumOverLast(2), 5.0 + 6.0);
  EXPECT_DOUBLE_EQ(ts.SumOverLast(100), 21.0);  // clamped to retained
  EXPECT_DOUBLE_EQ(ts.SumOverRange(1, 3), 2.0 + 3.0 + 4.0);
  // Ranges clamp to what the ring still holds.
  EXPECT_DOUBLE_EQ(ts.SumOverRange(-5, 0), 1.0);
}

TEST(TimeSeries, RateOverUsesTheTrailingSpan) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec(8));
  for (int w = 0; w < 4; ++w) {
    ts.Record(SimTime::Ms(static_cast<double>(w) + 0.5), 10.0);
  }
  // 20 events over the last 2ms.
  EXPECT_DOUBLE_EQ(ts.RateOver(SimTime::Ms(2.0)), 10000.0);
}

TEST(TimeSeries, GaugeCarriesForwardAcrossEmptyWindows) {
  TimeSeries ts(TimeSeries::Kind::kGauge, MsSpec());
  ts.Record(SimTime::Ms(0.5), 3.0);
  ts.Record(SimTime::Ms(4.5), 7.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(SimTime::Ms(0.9)), 3.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(SimTime::Ms(2.5)), 3.0);  // carried forward
  EXPECT_DOUBLE_EQ(ts.ValueAt(SimTime::Ms(4.9)), 7.0);
}

TEST(TimeSeries, EmptySeriesIsWellDefined) {
  TimeSeries ts(TimeSeries::Kind::kCounter, MsSpec());
  EXPECT_FALSE(ts.has_data());
  EXPECT_TRUE(ts.Windows().empty());
  EXPECT_DOUBLE_EQ(ts.Total(), 0.0);
  EXPECT_DOUBLE_EQ(ts.SumOverLast(4), 0.0);
  EXPECT_DOUBLE_EQ(ts.RateOver(SimTime::Ms(1.0)), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(SimTime::Ms(1.0)), 0.0);
}

TEST(TimeSeries, ShardMergeDigestMatchesSingleStream) {
  // The jobs=1 vs jobs=N contract: shards recorded independently and
  // merged in shard order must produce the digest of the serial stream.
  const WindowSpec spec = MsSpec(16);
  std::vector<std::pair<SimTime, double>> events;
  Rng rng(2021);
  for (int i = 0; i < 400; ++i) {
    events.emplace_back(SimTime::Us(rng.NextDouble() * 15000.0), 1.0);
  }
  std::sort(events.begin(), events.end());
  TimeSeries serial(TimeSeries::Kind::kCounter, spec);
  for (const auto& [t, v] : events) serial.Record(t, v);

  for (int shards : {2, 4, 7}) {
    std::vector<TimeSeries> parts;
    for (int s = 0; s < shards; ++s) {
      parts.emplace_back(TimeSeries::Kind::kCounter, spec);
    }
    // Contiguous time slices per shard keep each shard's records (and
    // the merged result) ordered.
    const std::size_t chunk =
        (events.size() + static_cast<std::size_t>(shards) - 1) /
        static_cast<std::size_t>(shards);
    for (std::size_t i = 0; i < events.size(); ++i) {
      parts[std::min(i / chunk, static_cast<std::size_t>(shards) - 1)]
          .Record(events[i].first, events[i].second);
    }
    TimeSeries merged(TimeSeries::Kind::kCounter, spec);
    for (const TimeSeries& p : parts) merged.MergeFrom(p);
    EXPECT_EQ(merged.Digest(), serial.Digest()) << shards << " shards";
  }
}

TEST(TimeSeries, DigestChangesWithContent) {
  TimeSeries a(TimeSeries::Kind::kCounter, MsSpec());
  TimeSeries b(TimeSeries::Kind::kCounter, MsSpec());
  a.Record(SimTime::Ms(0.5), 1.0);
  b.Record(SimTime::Ms(0.5), 2.0);
  EXPECT_NE(a.Digest(), b.Digest());
}

}  // namespace
}  // namespace clflow::obs
