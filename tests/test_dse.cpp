// Tests for the tiling design-space explorer (the paper's SS4.11
// future-work item): filters, counters, and the DSE v2 guarantees --
// thread-count-invariant results, sound analytical pruning, truncation
// visibility.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/dse.hpp"
#include "nets/nets.hpp"

namespace clflow::core {
namespace {

class DseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    net_ = new graph::Graph(nets::BuildMobileNetV1(rng));
  }
  static void TearDownTestSuite() { delete net_; }
  static graph::Graph* net_;
};
graph::Graph* DseTest::net_ = nullptr;

/// Field-by-field equality of everything the jobs-invariance contract
/// covers (ranking, every rejection counter, status strings, fps); the
/// informational cache_stats is deliberately excluded.
void ExpectIdenticalResults(const DseResult& a, const DseResult& b) {
  EXPECT_EQ(a.considered, b.considered);
  EXPECT_EQ(a.rejected_divisibility, b.rejected_divisibility);
  EXPECT_EQ(a.rejected_bandwidth, b.rejected_bandwidth);
  EXPECT_EQ(a.rejected_bound, b.rejected_bound);
  EXPECT_EQ(a.rejected_dominated, b.rejected_dominated);
  EXPECT_EQ(a.rejected_fit, b.rejected_fit);
  EXPECT_EQ(a.rejected_route, b.rejected_route);
  EXPECT_EQ(a.feasible_total, b.feasible_total);
  EXPECT_EQ(a.worst_kept_fps, b.worst_kept_fps);
  EXPECT_EQ(a.best_dropped_fps, b.best_dropped_fps);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    const DseCandidate& x = a.ranked[i];
    const DseCandidate& y = b.ranked[i];
    EXPECT_EQ(x.conv1x1.c1, y.conv1x1.c1) << "rank " << i;
    EXPECT_EQ(x.conv1x1.w2, y.conv1x1.w2) << "rank " << i;
    EXPECT_EQ(x.conv1x1.c2, y.conv1x1.c2) << "rank " << i;
    EXPECT_EQ(x.predicted_fps, y.predicted_fps) << "rank " << i;
    EXPECT_EQ(x.status, y.status) << "rank " << i;
    EXPECT_EQ(x.status_detail, y.status_detail) << "rank " << i;
    EXPECT_EQ(x.fmax_mhz, y.fmax_mhz) << "rank " << i;
    EXPECT_EQ(x.dsps, y.dsps) << "rank " << i;
    EXPECT_EQ(x.alut_frac, y.alut_frac) << "rank " << i;
  }
}

TEST_F(DseTest, FindsFeasibleConfigurations) {
  DseOptions opts;
  opts.c1_factors = {1, 4};
  opts.w2_factors = {1, 7};
  opts.c2_factors = {1, 8, 16};
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_EQ(result.considered, 12u);
  // Ranked best-first.
  for (std::size_t i = 1; i < result.ranked.size(); ++i) {
    EXPECT_GE(result.ranked[i - 1].predicted_fps,
              result.ranked[i].predicted_fps);
  }
  // Every surviving candidate synthesized.
  for (const auto& c : result.ranked) {
    EXPECT_EQ(c.status, fpga::SynthStatus::kOk);
    EXPECT_GT(c.fmax_mhz, 0.0);
    EXPECT_GT(c.dsps, 0);
  }
}

TEST_F(DseTest, RejectsNonDividingFactors) {
  DseOptions opts;
  opts.c1_factors = {3};  // 3 does not divide MobileNet's 1x1 C1 values
  opts.w2_factors = {1};
  opts.c2_factors = {1};
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(result.rejected_divisibility, 1u);
  EXPECT_TRUE(result.ranked.empty());
  EXPECT_THROW((void)result.best(), Error);
}

TEST_F(DseTest, BandwidthRuleBindsOnSingleHbmChannel) {
  // The S10MX's single pseudo-channel (12.8 GB/s) rejects wide streamed
  // dimensions that pass on the S10SX (SS4.11 requirement 1).
  DseOptions opts;
  opts.c1_factors = {4};
  opts.w2_factors = {7};
  opts.c2_factors = {4};
  const auto on_mx = ExploreFoldedTilings(*net_, fpga::Stratix10MX(), opts);
  const auto on_sx = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(on_mx.rejected_bandwidth, 1u);
  EXPECT_EQ(on_sx.rejected_bandwidth, 0u);
}

TEST_F(DseTest, BestRecipeDeploysAndMatchesHandPicked) {
  DseOptions opts;  // defaults: the full sweep
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());

  DeployOptions dep;
  dep.mode = ExecutionMode::kFolded;
  dep.recipe = result.BestRecipe("test");
  dep.board = fpga::Stratix10SX();
  auto best = Deployment::Compile(*net_, dep);
  ASSERT_TRUE(best.ok());

  dep.recipe = FoldedMobileNet("s10sx");
  auto hand = Deployment::Compile(*net_, dep);
  Tensor probe = Tensor::Full(Shape{1, 3, 224, 224}, 0.0f);
  // The explorer must do at least ~as well as the hand-picked config.
  EXPECT_GE(best.EstimateFps(probe), 0.95 * hand.EstimateFps(probe));
}

TEST_F(DseTest, RouteFailuresAreCounted) {
  DseOptions opts;
  opts.c1_factors = {8};
  opts.w2_factors = {7};
  opts.c2_factors = {16};  // 8*7*16 DSPs over-concentrate on the S10SX
  // The analytical bound catches the DSP concentration without compiling.
  const auto pruned = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(pruned.rejected_bound, 1u);
  EXPECT_EQ(pruned.rejected_route, 0u);
  EXPECT_TRUE(pruned.ranked.empty());
  // Without the bound, full synthesis reaches the same verdict.
  opts.prune_bound = false;
  const auto full = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(full.rejected_route, 1u);
  EXPECT_EQ(full.rejected_bound, 0u);
  EXPECT_TRUE(full.ranked.empty());
}

TEST_F(DseTest, FitFailuresAreCounted) {
  DseOptions opts;
  opts.c1_factors = {4};
  opts.w2_factors = {7};
  opts.c2_factors = {8};
  fpga::CostModel bloated;
  bloated.kernel_base_alut = 100'000'000;  // no kernel fits any board
  // The control-logic floor already exceeds the board: bound-rejected.
  const auto pruned =
      ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts, bloated);
  EXPECT_EQ(pruned.rejected_bound, 1u);
  EXPECT_EQ(pruned.rejected_fit, 0u);
  EXPECT_TRUE(pruned.ranked.empty());
  // Without the bound, synthesis reports the fit error.
  opts.prune_bound = false;
  const auto full =
      ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts, bloated);
  EXPECT_EQ(full.rejected_fit, 1u);
  EXPECT_EQ(full.rejected_route, 0u);
  EXPECT_TRUE(full.ranked.empty());
}

TEST_F(DseTest, RejectionCountersPartitionTheSweep) {
  // Every considered candidate lands in exactly one bucket: feasible or
  // one of the rejection counters.
  DseOptions opts;
  opts.c1_factors = {1, 3, 4};  // 3 never divides MobileNet's 1x1 C1
  opts.w2_factors = {1, 7};
  opts.c2_factors = {1, 16};
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(result.considered,
            result.feasible_total + result.rejected_divisibility +
                result.rejected_bandwidth + result.rejected_bound +
                result.rejected_dominated + result.rejected_fit +
                result.rejected_route);
  EXPECT_GT(result.rejected_divisibility, 0u);
}

TEST_F(DseTest, MaxCandidatesBoundsTheWholeSweep) {
  DseOptions opts;
  opts.max_candidates = 3;
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  // The cap stops the whole enumeration, not just one inner loop: with
  // |c2_factors| = 7 the old break-only-c2 bug kept counting into the
  // next c1/w2 iterations.
  EXPECT_EQ(result.considered, 3u);
}

TEST_F(DseTest, BoundPruningNeverChangesTheRanking) {
  // Soundness of BoundFoldedCandidate: the default sweep with the bound on
  // finds exactly the candidates full synthesis finds, and everything the
  // bound rejects would have failed fit or route.
  DseOptions with_bound;
  with_bound.cache = std::make_shared<CompileCache>();
  DseOptions without = with_bound;
  without.prune_bound = false;
  const auto a = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), with_bound);
  const auto b = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), without);
  EXPECT_EQ(a.rejected_bound,
            b.rejected_fit + b.rejected_route - a.rejected_fit -
                a.rejected_route);
  EXPECT_EQ(a.feasible_total, b.feasible_total);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].conv1x1.c1, b.ranked[i].conv1x1.c1);
    EXPECT_EQ(a.ranked[i].conv1x1.w2, b.ranked[i].conv1x1.w2);
    EXPECT_EQ(a.ranked[i].conv1x1.c2, b.ranked[i].conv1x1.c2);
    EXPECT_EQ(a.ranked[i].predicted_fps, b.ranked[i].predicted_fps);
  }
}

TEST_F(DseTest, TruncationIsVisible) {
  DseOptions opts;
  opts.c1_factors = {1, 2, 4};
  opts.w2_factors = {1, 7};
  opts.c2_factors = {1, 2, 4, 8};
  opts.top_k = 3;
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_EQ(result.ranked.size(), 3u);
  ASSERT_TRUE(result.truncated());
  EXPECT_GT(result.feasible_total, result.ranked.size());
  EXPECT_EQ(result.worst_kept_fps, result.ranked.back().predicted_fps);
  EXPECT_GT(result.best_dropped_fps, 0.0);
  // The cut is ordered: everything kept is at least as good as the best
  // candidate dropped.
  EXPECT_GE(result.worst_kept_fps, result.best_dropped_fps);

  // An untruncated sweep reports no dropped candidate.
  DseOptions wide = opts;
  wide.top_k = 64;
  const auto all = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), wide);
  EXPECT_FALSE(all.truncated());
  EXPECT_EQ(all.best_dropped_fps, 0.0);
}

TEST_F(DseTest, ParallelSweepIsBitIdenticalOnMobileNet) {
  // Same sweep on 1 and 8 workers, each with a private cache so neither
  // run warms the other: identical ranked vectors and counters.
  DseOptions serial;
  serial.jobs = 1;
  serial.cache = std::make_shared<CompileCache>();
  DseOptions parallel;
  parallel.jobs = 8;
  parallel.cache = std::make_shared<CompileCache>();
  const auto a = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), serial);
  const auto b = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), parallel);
  ASSERT_FALSE(a.ranked.empty());
  ExpectIdenticalResults(a, b);
}

TEST_F(DseTest, ParallelSweepIsBitIdenticalOnLeNet) {
  Rng rng(7);
  const graph::Graph lenet = nets::BuildLeNet5(rng);
  DseOptions serial;
  serial.jobs = 1;
  serial.cache = std::make_shared<CompileCache>();
  DseOptions parallel;
  parallel.jobs = 8;
  parallel.cache = std::make_shared<CompileCache>();
  const auto a = ExploreFoldedTilings(lenet, fpga::Arria10(), serial);
  const auto b = ExploreFoldedTilings(lenet, fpga::Arria10(), parallel);
  ASSERT_FALSE(a.ranked.empty());
  ExpectIdenticalResults(a, b);
}

TEST_F(DseTest, ParallelSweepIsBitIdenticalWithDominancePruning) {
  // The dominance window is fixed, so pruning decisions are also
  // thread-count invariant.
  DseOptions serial;
  serial.jobs = 1;
  serial.dominance_prune = true;
  serial.dominance_window = 4;
  serial.cache = std::make_shared<CompileCache>();
  DseOptions parallel = serial;
  parallel.jobs = 8;
  parallel.cache = std::make_shared<CompileCache>();
  const auto a = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), serial);
  const auto b = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), parallel);
  ASSERT_FALSE(a.ranked.empty());
  ExpectIdenticalResults(a, b);
}

TEST_F(DseTest, DominancePruningSkipsShadowedCandidates) {
  DseOptions opts;
  opts.dominance_prune = true;
  opts.dominance_window = 4;
  opts.cache = std::make_shared<CompileCache>();
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_GT(result.rejected_dominated, 0u);
  // Skipped candidates still partition the sweep.
  EXPECT_EQ(result.considered,
            result.feasible_total + result.rejected_divisibility +
                result.rejected_bandwidth + result.rejected_bound +
                result.rejected_dominated + result.rejected_fit +
                result.rejected_route);
  // The heuristic cannot invent a better design than the exhaustive sweep.
  const auto full = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), {});
  EXPECT_LE(result.best().predicted_fps, full.best().predicted_fps);
}

TEST_F(DseTest, SweepExportsDseGauges) {
  DseOptions opts;
  opts.c1_factors = {1, 4};
  opts.w2_factors = {7};
  opts.c2_factors = {4};
  opts.cache = std::make_shared<CompileCache>();
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  obs::Registry reg;
  result.ExportMetrics(reg);
  EXPECT_EQ(reg.gauge("dse.considered").value(),
            static_cast<double>(result.considered));
  EXPECT_EQ(reg.gauge("dse.feasible").value(),
            static_cast<double>(result.feasible_total));
  EXPECT_EQ(reg.gauge("dse.best_fps").value(),
            result.ranked.front().predicted_fps);
  // Shared kernels across the two candidates produced cache hits.
  EXPECT_GT(reg.gauge("dse.cache.hits").value(), 0.0);
  EXPECT_GT(reg.gauge("dse.cache.hit_rate").value(), 0.0);
  EXPECT_GT(reg.gauge("dse.cache.bytes").value(), 0.0);
}

TEST_F(DseTest, DefaultMobileNetSweepCacheHitRateMeetsFloor) {
  // Acceptance criterion: >= 50% hit rate on the default MobileNet sweep
  // (every candidate shares the conv3x3/conv_dw/pad/dense kernels).
  DseOptions opts;
  opts.cache = std::make_shared<CompileCache>();
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_GE(result.cache_stats.hit_rate(), 0.5);
}

}  // namespace
}  // namespace clflow::core
