// Tests for the tiling design-space explorer (the paper's SS4.11
// future-work item).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/dse.hpp"
#include "nets/nets.hpp"

namespace clflow::core {
namespace {

class DseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    net_ = new graph::Graph(nets::BuildMobileNetV1(rng));
  }
  static void TearDownTestSuite() { delete net_; }
  static graph::Graph* net_;
};
graph::Graph* DseTest::net_ = nullptr;

TEST_F(DseTest, FindsFeasibleConfigurations) {
  DseOptions opts;
  opts.c1_factors = {1, 4};
  opts.w2_factors = {1, 7};
  opts.c2_factors = {1, 8, 16};
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_EQ(result.considered, 12u);
  // Ranked best-first.
  for (std::size_t i = 1; i < result.ranked.size(); ++i) {
    EXPECT_GE(result.ranked[i - 1].predicted_fps,
              result.ranked[i].predicted_fps);
  }
  // Every surviving candidate synthesized.
  for (const auto& c : result.ranked) {
    EXPECT_EQ(c.status, fpga::SynthStatus::kOk);
    EXPECT_GT(c.fmax_mhz, 0.0);
    EXPECT_GT(c.dsps, 0);
  }
}

TEST_F(DseTest, RejectsNonDividingFactors) {
  DseOptions opts;
  opts.c1_factors = {3};  // 3 does not divide MobileNet's 1x1 C1 values
  opts.w2_factors = {1};
  opts.c2_factors = {1};
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(result.rejected_divisibility, 1u);
  EXPECT_TRUE(result.ranked.empty());
  EXPECT_THROW((void)result.best(), Error);
}

TEST_F(DseTest, BandwidthRuleBindsOnSingleHbmChannel) {
  // The S10MX's single pseudo-channel (12.8 GB/s) rejects wide streamed
  // dimensions that pass on the S10SX (SS4.11 requirement 1).
  DseOptions opts;
  opts.c1_factors = {4};
  opts.w2_factors = {7};
  opts.c2_factors = {4};
  const auto on_mx = ExploreFoldedTilings(*net_, fpga::Stratix10MX(), opts);
  const auto on_sx = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(on_mx.rejected_bandwidth, 1u);
  EXPECT_EQ(on_sx.rejected_bandwidth, 0u);
}

TEST_F(DseTest, BestRecipeDeploysAndMatchesHandPicked) {
  DseOptions opts;  // defaults: the full sweep
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());

  DeployOptions dep;
  dep.mode = ExecutionMode::kFolded;
  dep.recipe = result.BestRecipe("test");
  dep.board = fpga::Stratix10SX();
  auto best = Deployment::Compile(*net_, dep);
  ASSERT_TRUE(best.ok());

  dep.recipe = FoldedMobileNet("s10sx");
  auto hand = Deployment::Compile(*net_, dep);
  Tensor probe = Tensor::Full(Shape{1, 3, 224, 224}, 0.0f);
  // The explorer must do at least ~as well as the hand-picked config.
  EXPECT_GE(best.EstimateFps(probe), 0.95 * hand.EstimateFps(probe));
}

TEST_F(DseTest, RouteFailuresAreCounted) {
  DseOptions opts;
  opts.c1_factors = {8};
  opts.w2_factors = {7};
  opts.c2_factors = {16};  // the 7/16/8 configuration: fails on S10SX
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(result.rejected_route, 1u);
  EXPECT_TRUE(result.ranked.empty());
}

TEST_F(DseTest, FitFailuresAreCounted) {
  DseOptions opts;
  opts.c1_factors = {4};
  opts.w2_factors = {7};
  opts.c2_factors = {8};
  fpga::CostModel bloated;
  bloated.kernel_base_alut = 100'000'000;  // no kernel fits any board
  const auto result =
      ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts, bloated);
  EXPECT_EQ(result.rejected_fit, 1u);
  EXPECT_EQ(result.rejected_route, 0u);
  EXPECT_TRUE(result.ranked.empty());
}

TEST_F(DseTest, RejectionCountersPartitionTheSweep) {
  // Every considered candidate lands in exactly one bucket: ranked or one
  // of the rejection counters. (Factor sets small enough that the
  // feasible count stays under top_k, so ranked is not truncated.)
  DseOptions opts;
  opts.c1_factors = {1, 3, 4};  // 3 never divides MobileNet's 1x1 C1
  opts.w2_factors = {1, 7};
  opts.c2_factors = {1, 16};
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_EQ(result.considered,
            result.ranked.size() + result.rejected_divisibility +
                result.rejected_bandwidth + result.rejected_fit +
                result.rejected_route);
  EXPECT_GT(result.rejected_divisibility, 0u);
}

TEST_F(DseTest, MaxCandidatesBounds) {
  DseOptions opts;
  opts.max_candidates = 3;
  const auto result = ExploreFoldedTilings(*net_, fpga::Stratix10SX(), opts);
  EXPECT_LE(result.considered, 3u);
}

}  // namespace
}  // namespace clflow::core
