// Tests for the comparison-platform performance models: anchor
// reproduction (the published Tables 6.10/6.12/6.15 numbers) and sane
// scaling behaviour for unseen networks.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nets/nets.hpp"
#include "perfmodel/reference.hpp"

namespace clflow::perfmodel {
namespace {

class Anchors : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(5);
    lenet_ = new graph::Graph(nets::BuildLeNet5(rng));
    mobilenet_ = new graph::Graph(nets::BuildMobileNetV1(rng));
    resnet18_ = new graph::Graph(nets::BuildResNet(18, rng));
    resnet34_ = new graph::Graph(nets::BuildResNet(34, rng));
  }
  static void TearDownTestSuite() {
    delete lenet_;
    delete mobilenet_;
    delete resnet18_;
    delete resnet34_;
  }
  static graph::Graph *lenet_, *mobilenet_, *resnet18_, *resnet34_;
};

graph::Graph* Anchors::lenet_ = nullptr;
graph::Graph* Anchors::mobilenet_ = nullptr;
graph::Graph* Anchors::resnet18_ = nullptr;
graph::Graph* Anchors::resnet34_ = nullptr;

TEST_F(Anchors, TensorflowCpu) {
  EXPECT_NEAR(TensorflowCpuFps(*lenet_), 1075.0, 1.0);
  EXPECT_NEAR(TensorflowCpuFps(*mobilenet_), 21.6, 0.1);
  EXPECT_NEAR(TensorflowCpuFps(*resnet18_), 16.3, 0.1);
  EXPECT_NEAR(TensorflowCpuFps(*resnet34_), 10.7, 0.1);
}

TEST_F(Anchors, TensorflowGpu) {
  EXPECT_NEAR(TensorflowGpuFps(*lenet_), 1604.0, 1.0);
  EXPECT_NEAR(TensorflowGpuFps(*mobilenet_), 43.7, 0.1);
  EXPECT_NEAR(TensorflowGpuFps(*resnet18_), 46.5, 0.1);
  EXPECT_NEAR(TensorflowGpuFps(*resnet34_), 31.7, 0.1);
}

TEST_F(Anchors, TvmSingleThread) {
  EXPECT_NEAR(TvmCpuFps(*lenet_, 1), 2345.0, 5.0);
  EXPECT_NEAR(TvmCpuFps(*mobilenet_, 1), 15.6, 0.2);
  EXPECT_NEAR(TvmCpuFps(*resnet18_, 1), 5.8, 0.1);
  EXPECT_NEAR(TvmCpuFps(*resnet34_, 1), 1.2, 0.05);
}

TEST_F(Anchors, TvmManyThreadsNearPaperSweeps) {
  // Figures 6.5-6.7 peaks (within 15%).
  EXPECT_NEAR(TvmCpuFps(*mobilenet_, 56), 90.1, 0.15 * 90.1);
  EXPECT_NEAR(TvmCpuFps(*resnet18_, 56), 54.3, 0.15 * 54.3);
  EXPECT_NEAR(TvmCpuFps(*resnet34_, 56), 13.7, 0.15 * 13.7);
}

TEST_F(Anchors, LeNetScalesNegativelyWithThreads) {
  // Figure 6.4: more threads make LeNet slower under TVM.
  EXPECT_GT(TvmCpuFps(*lenet_, 1), TvmCpuFps(*lenet_, 16));
  EXPECT_GT(TvmCpuFps(*lenet_, 16), TvmCpuFps(*lenet_, 56));
}

TEST_F(Anchors, LargeNetsScaleMonotonically) {
  for (const graph::Graph* g : {mobilenet_, resnet18_, resnet34_}) {
    double last = 0.0;
    for (int threads : {1, 2, 4, 8, 16, 32, 56}) {
      const double fps = TvmCpuFps(*g, threads);
      EXPECT_GT(fps, last);
      last = fps;
    }
  }
}

TEST(GenericFallback, UnknownNetworkGetsRooflineEstimate) {
  Rng rng(6);
  graph::Graph g;
  auto x = g.AddInput(Shape{1, 64, 128, 128});
  g.AddConv2d(x, Tensor::HeNormal(Shape{64, 64, 3, 3}, rng, 576), Tensor(), 1,
              "c");
  g.set_name("custom_net");
  const double tf = TensorflowCpuFps(g);
  const double tvm1 = TvmCpuFps(g, 1);
  const double tvm8 = TvmCpuFps(g, 8);
  const double gpu = TensorflowGpuFps(g);
  EXPECT_GT(tf, 0.0);
  EXPECT_GT(tvm8, tvm1);
  EXPECT_GT(gpu, 0.0);
  // A tiny conv net should be dispatch-bound: thousands of FPS, not millions.
  EXPECT_LT(tf, 1e6);
}

TEST(GenericFallback, ThreadCountClamped) {
  Rng rng(7);
  graph::Graph g;
  auto x = g.AddInput(Shape{1, 4, 16, 16});
  g.AddConv2d(x, Tensor::HeNormal(Shape{4, 4, 3, 3}, rng, 36), Tensor(), 1,
              "c");
  EXPECT_DOUBLE_EQ(TvmCpuFps(g, 0), TvmCpuFps(g, 1));
  EXPECT_DOUBLE_EQ(TvmCpuFps(g, -5), TvmCpuFps(g, 1));
}

}  // namespace
}  // namespace clflow::perfmodel
