// Tests for the schedule primitives (paper Ch. 4 as IR rewrites).
// Every transformation is checked for semantics preservation with the
// interpreter, and for the structural property it claims to establish.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ir/analysis.hpp"
#include "ir/interp.hpp"
#include "ir/passes.hpp"

namespace clflow::ir {
namespace {

/// Builds the Listing 4.3 vector-matrix kernel: c[i] = sum_k x[k]*Y[i][k],
/// with the accumulator in the given scope.
struct MvKernel {
  Kernel kernel;
  BufferPtr x, y, c;
};

MvKernel MakeMv(std::int64_t rows, std::int64_t cols,
                MemScope acc_scope = MemScope::kPrivate) {
  MvKernel mv;
  mv.x = MakeBuffer("x", {IntImm(cols)}, MemScope::kGlobal, true);
  mv.y = MakeBuffer("Y", {IntImm(rows), IntImm(cols)}, MemScope::kGlobal, true);
  mv.c = MakeBuffer("c", {IntImm(rows)}, MemScope::kGlobal, true);
  auto sum = MakeBuffer("sum", {IntImm(1)}, acc_scope);
  auto i = MakeVar("i");
  auto k = MakeVar("k");
  mv.kernel.name = "mv";
  mv.kernel.buffer_args = {mv.x, mv.y, mv.c};
  if (acc_scope == MemScope::kGlobal) {
    sum->is_arg = true;
    mv.kernel.buffer_args.push_back(sum);
  } else {
    mv.kernel.local_buffers = {sum};
  }
  mv.kernel.body = For(
      i, IntImm(0), IntImm(rows),
      Block({Store(sum, {IntImm(0)}, FloatImm(0.0)),
             For(k, IntImm(0), IntImm(cols),
                 Store(sum, {IntImm(0)},
                       Add(Load(sum, {IntImm(0)}),
                           Mul(Load(mv.x, {VarRef(k)}),
                               Load(mv.y, {VarRef(i), VarRef(k)}))))),
             Store(mv.c, {VarRef(i)}, Load(sum, {IntImm(0)}))}));
  return mv;
}

std::vector<float> RunMv(const MvKernel& mv, std::int64_t rows,
                         [[maybe_unused]] std::int64_t cols,
                         const std::vector<float>& vx,
                         const std::vector<float>& vy) {
  std::vector<float> x = vx, y = vy, c(static_cast<std::size_t>(rows), -1.0f);
  std::vector<float> ws(1, 0.0f);
  InterpEnv env;
  env.BindBuffer(mv.x, x);
  env.BindBuffer(mv.y, y);
  env.BindBuffer(mv.c, c);
  for (const auto& b : mv.kernel.buffer_args) {
    if (b->name == "sum") env.BindBuffer(b, ws);
  }
  RunKernel(mv.kernel, env);
  return c;
}

class SplitParam : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SplitParam, PreservesSemantics) {
  const std::int64_t factor = GetParam();
  constexpr std::int64_t rows = 8, cols = 12;
  Rng rng(13);
  std::vector<float> vx(cols), vy(rows * cols);
  for (auto& v : vx) v = rng.Uniform(-1, 1);
  for (auto& v : vy) v = rng.Uniform(-1, 1);

  MvKernel base = MakeMv(rows, cols);
  const auto expected = RunMv(base, rows, cols, vx, vy);

  MvKernel split = MakeMv(rows, cols);
  split.kernel.body = SplitLoop(split.kernel.body, "k", factor);
  const auto actual = RunMv(split, rows, cols, vx, vy);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, SplitParam,
                         ::testing::Values<std::int64_t>(1, 2, 3, 4, 6, 12));

TEST(SplitLoop, RejectsNonDividingFactor) {
  MvKernel mv = MakeMv(8, 12);
  EXPECT_THROW((void)SplitLoop(mv.kernel.body, "k", 5), ScheduleError);
}

TEST(SplitLoop, RejectsUnknownLoop) {
  MvKernel mv = MakeMv(8, 12);
  EXPECT_THROW((void)SplitLoop(mv.kernel.body, "zz", 2), ScheduleError);
}

TEST(SplitLoop, InnerLoopIsVectorized) {
  MvKernel mv = MakeMv(8, 12);
  auto split = SplitLoop(mv.kernel.body, "k", 4);
  const Stmt inner = FindLoop(split, "k_i");
  EXPECT_TRUE(inner->ann.vectorized);
  std::int64_t extent = 0;
  ASSERT_TRUE(IsConstInt(inner->extent, &extent));
  EXPECT_EQ(extent, 4);
  const Stmt outer = FindLoop(split, "k_o");
  ASSERT_TRUE(IsConstInt(outer->extent, &extent));
  EXPECT_EQ(extent, 3);
}

TEST(UnrollLoop, AnnotationOnly) {
  MvKernel mv = MakeMv(4, 8);
  auto unrolled = UnrollLoop(mv.kernel.body, "k", -1);
  EXPECT_EQ(FindLoop(unrolled, "k")->ann.unroll, -1);
  auto partial = UnrollLoop(mv.kernel.body, "k", 4);
  EXPECT_EQ(FindLoop(partial, "k")->ann.unroll, 4);
}

TEST(UnrollLoop, RejectsNonDividingPartialFactor) {
  MvKernel mv = MakeMv(4, 8);
  EXPECT_THROW((void)UnrollLoop(mv.kernel.body, "k", 3), ScheduleError);
}

TEST(ExplicitUnroll, MatchesAnnotatedSemantics) {
  constexpr std::int64_t rows = 4, cols = 8;
  Rng rng(17);
  std::vector<float> vx(cols), vy(rows * cols);
  for (auto& v : vx) v = rng.Uniform(-1, 1);
  for (auto& v : vy) v = rng.Uniform(-1, 1);

  MvKernel base = MakeMv(rows, cols);
  const auto expected = RunMv(base, rows, cols, vx, vy);

  MvKernel repl = MakeMv(rows, cols);
  repl.kernel.body = ExplicitUnroll(repl.kernel.body, "k");
  // The loop is gone...
  EXPECT_THROW((void)FindLoop(repl.kernel.body, "k"), ScheduleError);
  // ...but the value is unchanged.
  const auto actual = RunMv(repl, rows, cols, vx, vy);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5f);
  }
}

// --- Loop fusion ------------------------------------------------------------

TEST(FuseAdjacentLoops, FusesElementwisePipelines) {
  // b[i] = a[i] + 1;  c[i] = b[i] * 2  ==>  single loop.
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto b = MakeBuffer("b", {IntImm(8)}, MemScope::kGlobal, true);
  auto c = MakeBuffer("c", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  Stmt l1 = For(i, IntImm(0), IntImm(8),
                Store(b, {VarRef(i)}, Add(Load(a, {VarRef(i)}), FloatImm(1))));
  Stmt l2 = For(j, IntImm(0), IntImm(8),
                Store(c, {VarRef(j)}, Mul(Load(b, {VarRef(j)}), FloatImm(2))));
  Stmt root = Block({l1, l2});
  Stmt fused = FuseAdjacentLoops(root, "i", "j");

  // One loop remains.
  int loop_count = 0;
  VisitStmts(fused, [&](const Stmt& s) {
    if (s->kind == StmtKind::kFor) ++loop_count;
  });
  EXPECT_EQ(loop_count, 1);

  // Semantics preserved.
  Kernel k;
  k.name = "fused";
  k.buffer_args = {a, b, c};
  k.body = fused;
  std::vector<float> va{1, 2, 3, 4, 5, 6, 7, 8}, vb(8), vc(8);
  InterpEnv env;
  env.BindBuffer(a, va);
  env.BindBuffer(b, vb);
  env.BindBuffer(c, vc);
  RunKernel(k, env);
  for (int t = 0; t < 8; ++t) EXPECT_FLOAT_EQ(vc[t], (va[t] + 1) * 2);
}

TEST(FuseAdjacentLoops, RejectsBackwardDependence) {
  // b[i] = a[i]; c[i] = b[7 - i]  -- iteration i of loop 2 reads elements
  // loop 1 has not written yet; fusion must refuse.
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto b = MakeBuffer("b", {IntImm(8)}, MemScope::kGlobal, true);
  auto c = MakeBuffer("c", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  Stmt l1 = For(i, IntImm(0), IntImm(8),
                Store(b, {VarRef(i)}, Load(a, {VarRef(i)})));
  Stmt l2 = For(j, IntImm(0), IntImm(8),
                Store(c, {VarRef(j)}, Load(b, {Sub(IntImm(7), VarRef(j))})));
  EXPECT_THROW((void)FuseAdjacentLoops(Block({l1, l2}), "i", "j"),
               ScheduleError);
}

TEST(FuseAdjacentLoops, RejectsWarHazard) {
  // b[i] = a[i] * b[0];  b[j] = c[j] -- loop 1 reads b[0] on every
  // iteration, loop 2 overwrites it on its first. Fused, iteration 1 of
  // loop 1 would read the value loop 2's iteration 0 just wrote
  // (write-after-read violated); fusion must refuse.
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto b = MakeBuffer("b", {IntImm(8)}, MemScope::kGlobal, true);
  auto c = MakeBuffer("c", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  Stmt l1 = For(i, IntImm(0), IntImm(8),
                Store(a, {VarRef(i)},
                      Mul(Load(a, {VarRef(i)}), Load(b, {IntImm(0)}))));
  Stmt l2 = For(j, IntImm(0), IntImm(8),
                Store(b, {VarRef(j)}, Load(c, {VarRef(j)})));
  try {
    (void)FuseAdjacentLoops(Block({l1, l2}), "i", "j");
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    EXPECT_EQ(e.code(), "CLF404");
    EXPECT_EQ(e.loop(), "i");
  }
}

TEST(FuseAdjacentLoops, RejectsWawHazard) {
  // a[0] = c[i];  a[j] = 0 -- after the sequential loops a[0] is 0, but
  // fused, iteration 7 of loop 1 writes a[0] after loop 2's iteration 0
  // cleared it (write-after-write violated); fusion must refuse.
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto c = MakeBuffer("c", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  Stmt l1 = For(i, IntImm(0), IntImm(8),
                Store(a, {IntImm(0)}, Load(c, {VarRef(i)})));
  Stmt l2 = For(j, IntImm(0), IntImm(8),
                Store(a, {VarRef(j)}, FloatImm(0)));
  try {
    (void)FuseAdjacentLoops(Block({l1, l2}), "i", "j");
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    EXPECT_EQ(e.code(), "CLF404");
  }
}

TEST(FuseAdjacentLoops, RejectsMismatchedExtents) {
  auto b = MakeBuffer("b", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  Stmt l1 = For(i, IntImm(0), IntImm(8), Store(b, {VarRef(i)}, FloatImm(0)));
  Stmt l2 = For(j, IntImm(0), IntImm(4), Store(b, {VarRef(j)}, FloatImm(1)));
  EXPECT_THROW((void)FuseAdjacentLoops(Block({l1, l2}), "i", "j"),
               ScheduleError);
}

TEST(FuseAdjacentLoops, RejectsNonAdjacentLoops) {
  auto b = MakeBuffer("b", {IntImm(4)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  Stmt l1 = For(i, IntImm(0), IntImm(4), Store(b, {VarRef(i)}, FloatImm(0)));
  Stmt mid = Store(b, {IntImm(0)}, FloatImm(9));
  Stmt l2 = For(j, IntImm(0), IntImm(4), Store(b, {VarRef(j)}, FloatImm(1)));
  EXPECT_THROW((void)FuseAdjacentLoops(Block({l1, mid, l2}), "i", "j"),
               ScheduleError);
}

// --- Loop-invariant code motion ----------------------------------------------

TEST(HoistInvariants, Listing48Normalization) {
  // Listing 4.8: computing max(a) inside the normalization loop; after ICM
  // it runs once (Listing 4.9).
  auto a = MakeBuffer("a", {IntImm(16)}, MemScope::kGlobal, true);
  auto b = MakeBuffer("b", {IntImm(16)}, MemScope::kGlobal, true);
  auto amax = MakeBuffer("a_max", {IntImm(1)}, MemScope::kPrivate);
  auto i = MakeVar("i");
  auto j = MakeVar("j");

  Stmt init = Store(amax, {IntImm(0)}, FloatImm(-9.9e37));
  Stmt maxloop =
      For(j, IntImm(0), IntImm(16),
          Store(amax, {IntImm(0)},
                Max(Load(amax, {IntImm(0)}), Load(a, {VarRef(j)}))));
  Stmt norm = Store(b, {VarRef(i)},
                    Div(Load(a, {VarRef(i)}), Load(amax, {IntImm(0)})));
  Stmt root = For(i, IntImm(0), IntImm(16), Block({init, maxloop, norm}));

  Stmt hoisted = HoistInvariants(root, "i");

  // Structure: the j loop is no longer nested under i.
  bool j_inside_i = false;
  VisitStmts(hoisted, [&](const Stmt& s) {
    if (s->kind == StmtKind::kFor && s->var->name == "i") {
      VisitStmts(s->body, [&](const Stmt& inner) {
        if (inner->kind == StmtKind::kFor && inner->var->name == "j") {
          j_inside_i = true;
        }
      });
    }
  });
  EXPECT_FALSE(j_inside_i);

  // Semantics: b[i] = a[i] / max(a).
  Kernel k;
  k.name = "norm";
  k.buffer_args = {a, b};
  k.local_buffers = {amax};
  k.body = hoisted;
  std::vector<float> va(16), vb(16);
  Rng rng(23);
  for (auto& v : va) v = rng.Uniform(0.1f, 4.0f);
  InterpEnv env;
  env.BindBuffer(a, va);
  env.BindBuffer(b, vb);
  RunKernel(k, env);
  const float m = *std::max_element(va.begin(), va.end());
  for (int t = 0; t < 16; ++t) EXPECT_NEAR(vb[t], va[t] / m, 1e-6f);
}

TEST(HoistInvariants, RefusesWhenNothingIsInvariant) {
  auto b = MakeBuffer("b", {IntImm(4)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  Stmt root = For(i, IntImm(0), IntImm(4),
                  Block({Store(b, {VarRef(i)}, FloatImm(1))}));
  EXPECT_THROW((void)HoistInvariants(root, "i"), ScheduleError);
}

// --- Cached writes -----------------------------------------------------------

TEST(CacheWrite, MovesScratchpadToRegisters) {
  MvKernel mv = MakeMv(4, 8, MemScope::kGlobal);
  // The scratchpad is a kernel argument before the pass...
  EXPECT_EQ(mv.kernel.buffer_args.size(), 4u);
  CacheWrite(mv.kernel, "sum");
  // ...and a private local after.
  EXPECT_EQ(mv.kernel.buffer_args.size(), 3u);
  ASSERT_EQ(mv.kernel.local_buffers.size(), 1u);
  EXPECT_EQ(mv.kernel.local_buffers[0]->scope, MemScope::kPrivate);

  // The reduction II collapses from 5 to 1 (the paper's core observation).
  const auto stats = AnalyzeKernel(mv.kernel);
  EXPECT_EQ(stats.worst_ii, 1);
}

TEST(CacheWrite, GlobalScratchpadHasBadII) {
  MvKernel mv = MakeMv(4, 8, MemScope::kGlobal);
  const auto stats = AnalyzeKernel(mv.kernel);
  EXPECT_EQ(stats.worst_ii, kGlobalReductionII);
}

TEST(CacheWrite, RefusesWhenBufferIsOnlyOutput) {
  auto a = MakeBuffer("a", {IntImm(4)}, MemScope::kGlobal, true);
  auto out = MakeBuffer("out", {IntImm(4)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  Kernel k;
  k.name = "copy";
  k.buffer_args = {a, out};
  k.body =
      For(i, IntImm(0), IntImm(4), Store(out, {VarRef(i)}, Load(a, {VarRef(i)})));
  EXPECT_THROW(CacheWrite(k, "out"), ScheduleError);
  EXPECT_THROW(CacheWrite(k, "nonexistent"), ScheduleError);
}

TEST(CacheWrite, SemanticsPreserved) {
  constexpr std::int64_t rows = 6, cols = 10;
  Rng rng(29);
  std::vector<float> vx(cols), vy(rows * cols);
  for (auto& v : vx) v = rng.Uniform(-2, 2);
  for (auto& v : vy) v = rng.Uniform(-2, 2);

  MvKernel base = MakeMv(rows, cols, MemScope::kGlobal);
  const auto expected = RunMv(base, rows, cols, vx, vy);

  MvKernel cached = MakeMv(rows, cols, MemScope::kGlobal);
  CacheWrite(cached.kernel, "sum");
  const auto actual = RunMv(cached, rows, cols, vx, vy);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-5f);
  }
}

}  // namespace
}  // namespace clflow::ir
