// Tests for the resilience layer: deterministic fault injection, the
// hardened runtime's retry/verify/watchdog machinery, fault surfacing
// through Deployment diagnostics, and graceful compile-time degradation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/fallback.hpp"
#include "ir/op_kernels.hpp"
#include "nets/nets.hpp"
#include "obs/metrics.hpp"
#include "ocl/runtime.hpp"
#include "ocl/trace.hpp"
#include "resilience/fault.hpp"

namespace clflow {
namespace {

using ocl::Runtime;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::FaultPlan;
using resilience::FaultSpec;
using resilience::ParseFaultSpec;

struct TestDesign {
  std::vector<ir::BuiltKernel> built;
  fpga::Bitstream bitstream;
};

TestDesign MakeDesign(int n, const fpga::BoardSpec& board) {
  TestDesign d;
  std::vector<fpga::SynthInput> inputs;
  d.built.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    d.built.push_back(ir::BuildCopyKernel(1024, "k" + std::to_string(i)));
  }
  for (const auto& b : d.built) inputs.push_back({&b.kernel, {}});
  d.bitstream = fpga::Synthesize(inputs, board);
  return d;
}

ir::KernelStats FixedCycles(double cycles) {
  ir::KernelStats stats;
  stats.compute_cycles = cycles;
  return stats;
}

std::shared_ptr<FaultInjector> Inject(Runtime& rt,
                                      std::vector<std::string> specs,
                                      std::uint64_t seed = 17) {
  FaultPlan plan;
  plan.seed = seed;
  for (const auto& s : specs) plan.specs.push_back(ParseFaultSpec(s));
  auto injector = std::make_shared<FaultInjector>(plan);
  rt.set_fault_injector(injector);
  return injector;
}

// --- FaultSpec parsing ------------------------------------------------------

TEST(FaultSpec, ParsesEveryKind) {
  FaultSpec f = ParseFaultSpec("xfer-fail:write:2:3");
  EXPECT_EQ(f.kind, FaultKind::kTransferFail);
  EXPECT_EQ(f.target, "write");
  EXPECT_EQ(f.index, 2);
  EXPECT_EQ(f.times, 3);

  f = ParseFaultSpec("xfer-corrupt:read");
  EXPECT_EQ(f.kind, FaultKind::kTransferCorrupt);
  EXPECT_EQ(f.target, "read");
  EXPECT_EQ(f.index, 0);
  EXPECT_EQ(f.times, 1);

  f = ParseFaultSpec("hang:k_conv3x3");
  EXPECT_EQ(f.kind, FaultKind::kKernelHang);
  EXPECT_EQ(f.target, "k_conv3x3");

  f = ParseFaultSpec("corrupt:k_dense:1:2");
  EXPECT_EQ(f.kind, FaultKind::kKernelCorrupt);
  EXPECT_EQ(f.index, 1);
  EXPECT_EQ(f.times, 2);

  f = ParseFaultSpec("fmax-droop:0.9");
  EXPECT_EQ(f.kind, FaultKind::kFmaxDroop);
  EXPECT_DOUBLE_EQ(f.factor, 0.9);

  f = ParseFaultSpec("reset:k_pool:1");
  EXPECT_EQ(f.kind, FaultKind::kDeviceReset);
  EXPECT_EQ(f.index, 1);
}

TEST(FaultSpec, RoundTripsThroughToString) {
  for (const char* s : {"xfer-fail:write:2:3", "xfer-corrupt:read:0",
                        "hang:k0:1", "corrupt:kd:0:2", "reset:kr:4"}) {
    const FaultSpec f = ParseFaultSpec(s);
    EXPECT_EQ(ParseFaultSpec(f.ToString()).ToString(), f.ToString()) << s;
  }
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)ParseFaultSpec(""), Error);
  EXPECT_THROW((void)ParseFaultSpec("frobnicate:k0"), Error);
  EXPECT_THROW((void)ParseFaultSpec("xfer-fail:sideways"), Error);
  EXPECT_THROW((void)ParseFaultSpec("xfer-fail:write:x"), Error);
  EXPECT_THROW((void)ParseFaultSpec("xfer-fail:write:0:0"), Error);
  EXPECT_THROW((void)ParseFaultSpec("hang:"), Error);
  EXPECT_THROW((void)ParseFaultSpec("fmax-droop:1.5"), Error);
  EXPECT_THROW((void)ParseFaultSpec("fmax-droop:0"), Error);
  EXPECT_THROW((void)ParseFaultSpec("corrupt:k:0:1:9"), Error);
}

// --- Transfer retry ---------------------------------------------------------

TEST(Resilience, TransferFailureRetriesAndRecovers) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  Inject(rt, {"xfer-fail:write:0:2"});
  auto buf = rt.CreateBuffer(1024);
  std::vector<float> src(1024, 3.25f), dst(1024, 0.0f);

  rt.EnqueueWrite(0, buf, src);
  rt.EnqueueRead(0, buf, dst);
  rt.Finish();

  // Functional result is intact despite two failed DMA attempts.
  EXPECT_FLOAT_EQ(dst[1023], 3.25f);
  EXPECT_EQ(rt.xfer_retries(), 2);
  EXPECT_GT(rt.backoff_time(), kSimTimeZero);
  // Backoff is exponential: 50us + 100us with the default policy.
  EXPECT_NEAR(rt.backoff_time().us(), 150.0, 1e-6);
  // Every attempt is a distinct profiled event with an attempt marker.
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 4u);  // fail#0, fail#1, clean write, read
  EXPECT_NE(ev[0].label.find("[fail#0]"), std::string::npos);
  EXPECT_NE(ev[1].label.find("[fail#1]"), std::string::npos);
  EXPECT_EQ(ev[2].label, "write");
  // Failed attempts still consumed bus time and traffic.
  EXPECT_EQ(rt.bytes_h2d(), 3 * 1024 * 4);
}

TEST(Resilience, CorruptedTransferIsDetectedAndRetried) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  Inject(rt, {"xfer-corrupt:read:0"});
  auto buf = rt.CreateBuffer(64);
  std::vector<float> src(64, 1.5f), dst(64, 0.0f);

  rt.EnqueueWrite(0, buf, src);
  rt.EnqueueRead(0, buf, dst);
  rt.Finish();

  // The corrupted attempt flipped bits, the verified retry fixed them.
  for (float v : dst) EXPECT_FLOAT_EQ(v, 1.5f);
  EXPECT_EQ(rt.xfer_retries(), 1);
  // The injected log records a nonzero corruption mask.
  const auto& injected = rt.fault_injector()->injected();
  ASSERT_EQ(injected.size(), 1u);
  EXPECT_NE(injected[0].mask, 0u);
}

TEST(Resilience, RetryExhaustionThrowsStructuredClf503) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  resilience::RetryPolicy policy;
  policy.max_attempts = 3;
  rt.set_retry_policy(policy);
  Inject(rt, {"xfer-fail:write:0:99"});
  auto buf = rt.CreateBuffer(16);
  std::vector<float> src(16, 1.0f);

  try {
    rt.EnqueueWrite(0, buf, src);
    FAIL() << "expected RuntimeFaultError";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF503");
    EXPECT_EQ(e.attempts(), 3);
    EXPECT_FALSE(e.queue_snapshot().empty());
    EXPECT_NE(std::string(e.what()).find("CLF503"), std::string::npos);
  }
}

// --- Kernel faults ----------------------------------------------------------

TEST(Resilience, KernelCorruptionRerunsAndCharges) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime clean_rt(d.bitstream);
  clean_rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000),
                             .functional = {}, .reads_channels = {},
                             .writes_channels = {}});
  const SimTime clean = clean_rt.Finish();

  Runtime rt(d.bitstream);
  Inject(rt, {"corrupt:k0:0:2"});
  int calls = 0;
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000),
                       .functional = [&calls] { ++calls; },
                       .reads_channels = {}, .writes_channels = {}});
  const SimTime faulted = rt.Finish();

  EXPECT_EQ(calls, 1);  // deterministic functor: one clean evaluation
  EXPECT_EQ(rt.kernel_reruns(), 2);
  // Two discarded executions cost real simulated time.
  EXPECT_GT(faulted.us(), 2.5 * clean.us());
  // Reruns are visible as separate events.
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].label, "k0");
  EXPECT_NE(ev[1].label.find("[rerun#1]"), std::string::npos);
  EXPECT_NE(ev[2].label.find("[rerun#2]"), std::string::npos);
}

TEST(Resilience, PersistentKernelCorruptionThrowsClf504) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  Inject(rt, {"corrupt:k0:0:4"});  // >= default max_attempts of 4
  try {
    rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                         .functional = {}, .reads_channels = {},
                         .writes_channels = {}});
    FAIL() << "expected RuntimeFaultError";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF504");
    EXPECT_EQ(e.kernel(), "k0");
  }
}

TEST(Resilience, HungConsumerRaisesWatchdogDeadlock) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.set_watchdog_timeout(SimTime::Ms(5.0));
  Inject(rt, {"hang:k0"});
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {"ch"}});
  try {
    rt.EnqueueKernel(0, {.name = "k1", .stats = FixedCycles(1000),
                         .functional = {}, .reads_channels = {"ch"},
                         .writes_channels = {}});
    FAIL() << "expected RuntimeFaultError";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF502");
    EXPECT_EQ(e.channel(), "ch");
    EXPECT_EQ(e.kernel(), "k1");  // the blocked reader
    EXPECT_FALSE(e.queue_snapshot().empty());
    EXPECT_NE(std::string(e.what()).find("k0"), std::string::npos);
  }
  // The watchdog charged its bound to the stalled channel.
  EXPECT_GE(rt.channel_stall().at("ch"), SimTime::Ms(5.0));
}

TEST(Resilience, HangWithoutConsumerIsCaughtByFinish) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  Inject(rt, {"hang:k0"});
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {"ch"}});
  try {
    (void)rt.Finish();
    FAIL() << "expected RuntimeFaultError";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF502");
    EXPECT_EQ(e.kernel(), "k0");
    EXPECT_EQ(e.channel(), "ch");
  }
  // The watchdog cleared the hang: the runtime stays usable.
  rt.set_fault_injector(nullptr);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  EXPECT_GT(rt.Finish(), kSimTimeZero);
}

TEST(Resilience, FmaxDroopSlowsEveryKernel) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime clean_rt(d.bitstream);
  clean_rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000000),
                             .functional = {}, .reads_channels = {},
                             .writes_channels = {}});
  clean_rt.Finish();

  Runtime slow_rt(d.bitstream);
  Inject(slow_rt, {"fmax-droop:0.5"});
  slow_rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000000),
                            .functional = {}, .reads_channels = {},
                            .writes_channels = {}});
  slow_rt.Finish();

  const double clean_us = clean_rt.events()[0].duration().us();
  const double slow_us = slow_rt.events()[0].duration().us();
  EXPECT_NEAR(slow_us, 2.0 * clean_us, 0.05 * clean_us);
}

TEST(Resilience, DeviceResetChargesReprogram) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  Inject(rt, {"reset:k0"});
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  const SimTime makespan = rt.Finish();

  EXPECT_EQ(rt.reprograms(), 1);
  EXPECT_GE(makespan, rt.retry_policy().reprogram_cost);
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_NE(ev[0].label.find("reprogram"), std::string::npos);
}

// --- Determinism ------------------------------------------------------------

TEST(Resilience, SamePlanSameSeedIsBitIdentical) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  auto run = [&d] {
    Runtime rt(d.bitstream);
    auto injector = Inject(
        rt,
        {"xfer-fail:write:0:1", "xfer-corrupt:read:0", "corrupt:k1:0:1",
         "fmax-droop:0.9"},
        /*seed=*/123);
    auto buf = rt.CreateBuffer(256);
    std::vector<float> src(256, 2.0f), dst(256, 0.0f);
    rt.EnqueueWrite(0, buf, src);
    rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(50000),
                         .functional = {}, .reads_channels = {},
                         .writes_channels = {"ch"}});
    rt.EnqueueKernel(0, {.name = "k1", .stats = FixedCycles(50000),
                         .functional = {}, .reads_channels = {"ch"},
                         .writes_channels = {}});
    rt.EnqueueRead(0, buf, dst);
    rt.Finish();
    std::vector<std::string> log;
    for (const auto& f : injector->injected()) log.push_back(f.ToString());
    std::vector<std::string> stream;
    for (const auto& e : rt.events()) {
      stream.push_back(e.label + "@" + std::to_string(e.start.ps()) + "-" +
                       std::to_string(e.end.ps()) + " q" +
                       std::to_string(e.queue));
    }
    return std::pair{log, stream};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);    // identical injected-fault log
  EXPECT_EQ(a.second, b.second);  // identical event stream
}

// --- Deployment-level integration -------------------------------------------

core::DeployOptions LenetPipelinedOptions() {
  core::DeployOptions opts;
  opts.mode = core::ExecutionMode::kPipelined;
  opts.recipe = core::PipelineAutorun();
  opts.recipe.concurrent_execution = true;
  opts.board = fpga::Stratix10SX();
  return opts;
}

TEST(Resilience, DeploymentRecoversSeededPlanBitExactly) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  auto d = core::Deployment::Compile(net, LenetPipelinedOptions());
  ASSERT_TRUE(d.ok());

  FaultPlan plan;
  plan.seed = 99;
  plan.specs.push_back(ParseFaultSpec("xfer-fail:write:0:2"));
  plan.specs.push_back(ParseFaultSpec("xfer-corrupt:read:0"));
  plan.specs.push_back(ParseFaultSpec("corrupt:k_conv1:0:1"));
  auto& rt = d.runtime();
  rt.set_fault_injector(std::make_shared<FaultInjector>(plan));

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  const auto run = d.Run(image, /*functional=*/true);

  // The recovered output matches the graph oracle bit-exactly.
  const Tensor expected = graph::Execute(d.fused_graph(), image, 1);
  const Tensor got = run.output.Reshaped(expected.shape());
  const auto gs = got.data();
  const auto es = expected.data();
  ASSERT_EQ(gs.size(), es.size());
  EXPECT_TRUE(std::equal(gs.begin(), gs.end(), es.begin()));

  // Retries and reruns are visible in counters, metrics, and the trace.
  EXPECT_EQ(rt.xfer_retries(), 3);  // 2 write fails + 1 corrupt read
  EXPECT_EQ(rt.kernel_reruns(), 1);
  obs::Registry reg;
  rt.ExportMetrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("ocl.resilience.xfer_retries").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("ocl.resilience.kernel_reruns").value(), 1.0);
  EXPECT_GT(reg.gauge("ocl.resilience.backoff_us").value(), 0.0);
  const std::string trace = ocl::ExportChromeTrace(
      rt.events(), d.telemetry().tracer.spans(), "faulted");
  EXPECT_NE(trace.find("[fail#0]"), std::string::npos);
  EXPECT_NE(trace.find("[rerun#1]"), std::string::npos);
}

TEST(Resilience, DeploymentSurfacesDeadlockInDiagnostics) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  auto d = core::Deployment::Compile(net, LenetPipelinedOptions());
  ASSERT_TRUE(d.ok());

  FaultPlan plan;
  plan.specs.push_back(ParseFaultSpec("hang:k_conv1"));
  d.runtime().set_fault_injector(std::make_shared<FaultInjector>(plan));
  d.runtime().set_watchdog_timeout(SimTime::Ms(10.0));

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  try {
    (void)d.Run(image, /*functional=*/true);
    FAIL() << "expected RuntimeFaultError";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF502");
    EXPECT_FALSE(e.channel().empty());
  }
  // Run() mirrored the fault into the diagnostics engine.
  const auto found = d.diagnostics().ByCode("CLF502");
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0].severity, analysis::Severity::kError);
  EXPECT_NE(found[0].message.find("watchdog"), std::string::npos);
}

// --- Graceful compile degradation -------------------------------------------

TEST(Fallback, RecoversRouteFailedTiling) {
  Rng rng(42);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  core::DeployOptions opts;
  opts.mode = core::ExecutionMode::kFolded;
  opts.recipe = core::FoldedMobileNet("s10sx");
  // The known S10SX routing casualty: C1/W2/C2 = 8/7/16.
  opts.recipe.conv1x1 = core::ConvTiling{8, 7, 16, true};
  opts.board = fpga::Stratix10SX();

  core::FallbackPolicy policy;
  auto result = core::CompileWithFallback(net, opts, policy);

  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.recovered());
  ASSERT_GE(result.attempts.size(), 2u);
  EXPECT_EQ(result.attempts.front().status, "route-failed");
  EXPECT_EQ(result.attempts.back().status, "ok");
  EXPECT_GT(result.attempts.back().fmax_mhz, 0.0);
  EXPECT_NE(result.attempts[1].delta.find("halved"), std::string::npos);

  // The winning deployment carries the full attempt log in telemetry.
  auto& d = *result.deployment;
  EXPECT_TRUE(d.ok());
  EXPECT_GE(d.telemetry().registry.gauge("fallback.attempts").value(), 2.0);
  EXPECT_DOUBLE_EQ(d.telemetry().registry.gauge("fallback.recovered").value(),
                   1.0);
  bool has_span = false;
  for (const auto& s : d.telemetry().tracer.spans()) {
    if (s.name == "fallback:attempt0") has_span = true;
  }
  EXPECT_TRUE(has_span);

  // The recovered deployment actually runs.
  Tensor probe = Tensor::Full(Shape{1, 3, 224, 224}, 0.0f);
  EXPECT_GT(d.EstimateFps(probe), 0.0);
}

TEST(Fallback, ExhaustedLadderReportsEveryRung) {
  // A board too small for anything: the pipelined ladder sheds every
  // optimization, switches modes, and still fails -- but the log shows
  // each rung, including the mode switch.
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions opts = LenetPipelinedOptions();
  opts.recipe = core::PipelineTvmAutorun();
  opts.board = fpga::Stratix10SX();
  opts.board.aluts = 20000;  // nothing fits
  core::FallbackPolicy policy;
  policy.max_attempts = 8;

  const auto result = core::CompileWithFallback(net, opts, policy);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.attempts.size(), 4u);
  bool switched = false;
  for (const auto& a : result.attempts) {
    EXPECT_NE(a.status, "ok");
    if (a.delta.find("switched execution mode") != std::string::npos) {
      switched = true;
    }
  }
  EXPECT_TRUE(switched);
}

// --- Concurrent fault kinds in one plan -------------------------------------

TEST(Resilience, ConcurrentDroopAndCorruptionRecoverBitExactly) {
  // Thermal throttling AND a corrupted transfer AND kernel output
  // corruption in one plan: the clock scaling must not perturb the
  // retry/rerun machinery, and the recovered output stays bit-exact.
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  auto clean = core::Deployment::Compile(net, LenetPipelinedOptions());
  auto d = core::Deployment::Compile(net, LenetPipelinedOptions());
  ASSERT_TRUE(d.ok());

  FaultPlan plan;
  plan.seed = 5;
  plan.specs.push_back(ParseFaultSpec("fmax-droop:0.85"));
  plan.specs.push_back(ParseFaultSpec("xfer-corrupt:write:0"));
  plan.specs.push_back(ParseFaultSpec("corrupt:k_conv1:0:2"));
  d.runtime().set_fault_injector(std::make_shared<FaultInjector>(plan));

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  const auto faulted = d.Run(image, /*functional=*/true);
  const auto baseline = clean.Run(image, /*functional=*/true);

  const Tensor expected = graph::Execute(d.fused_graph(), image, 1);
  const Tensor got = faulted.output.Reshaped(expected.shape());
  const auto gs = got.data();
  const auto es = expected.data();
  EXPECT_TRUE(std::equal(gs.begin(), gs.end(), es.begin()));

  auto& rt = d.runtime();
  EXPECT_EQ(rt.xfer_retries(), 1);   // the corrupted write
  EXPECT_EQ(rt.kernel_reruns(), 2);  // two corrupt executions of k_conv1
  // The droop slows every kernel, so even the recovered run is strictly
  // slower than the clean baseline by more than retry overhead alone.
  EXPECT_GT(faulted.latency, baseline.latency);
}

TEST(Resilience, ConcurrentResetAndTransferFailureInOnePlan) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  auto d = core::Deployment::Compile(net, LenetPipelinedOptions());
  ASSERT_TRUE(d.ok());

  FaultPlan plan;
  plan.seed = 5;
  plan.specs.push_back(ParseFaultSpec("reset:k_conv1:0"));
  plan.specs.push_back(ParseFaultSpec("xfer-fail:write:0:2"));
  d.runtime().set_fault_injector(std::make_shared<FaultInjector>(plan));

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  const auto run = d.Run(image, /*functional=*/true);

  const Tensor expected = graph::Execute(d.fused_graph(), image, 1);
  const Tensor got = run.output.Reshaped(expected.shape());
  const auto gs = got.data();
  const auto es = expected.data();
  EXPECT_TRUE(std::equal(gs.begin(), gs.end(), es.begin()));
  EXPECT_EQ(d.runtime().reprograms(), 1);
  EXPECT_EQ(d.runtime().xfer_retries(), 2);
}

TEST(Resilience, ConcurrentDroopAndHangStillRaisesStructuredClf502) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions opts = LenetPipelinedOptions();
  opts.runtime.watchdog_timeout = SimTime::Ms(10.0);
  auto d = core::Deployment::Compile(net, opts);
  ASSERT_TRUE(d.ok());

  FaultPlan plan;
  plan.specs.push_back(ParseFaultSpec("fmax-droop:0.9"));
  plan.specs.push_back(ParseFaultSpec("hang:k_conv1"));
  d.runtime().set_fault_injector(std::make_shared<FaultInjector>(plan));

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  try {
    (void)d.Run(image, /*functional=*/true);
    FAIL() << "expected RuntimeFaultError";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF502");
  }
}

TEST(Fallback, RecoveredLadderDeploymentSurvivesConcurrentFaults) {
  // The compile-time ladder and the runtime recovery machinery compose:
  // a route-failed tiling degrades to a routable recipe, and that
  // deployment then recovers a multi-kind runtime fault plan bit-exactly.
  Rng rng(42);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  core::DeployOptions opts;
  opts.mode = core::ExecutionMode::kFolded;
  opts.recipe = core::FoldedMobileNet("s10sx");
  opts.recipe.conv1x1 = core::ConvTiling{8, 7, 16, true};  // route-fails
  opts.board = fpga::Stratix10SX();

  auto result = core::CompileWithFallback(net, opts, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.recovered());
  auto& d = *result.deployment;

  FaultPlan plan;
  plan.seed = 5;
  plan.specs.push_back(ParseFaultSpec("fmax-droop:0.9"));
  plan.specs.push_back(ParseFaultSpec("xfer-corrupt:write:0"));
  d.runtime().set_fault_injector(std::make_shared<FaultInjector>(plan));

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  const auto run = d.Run(image, /*functional=*/true);

  const Tensor expected = graph::Execute(d.fused_graph(), image, 1);
  const Tensor got = run.output.Reshaped(expected.shape());
  const auto gs = got.data();
  const auto es = expected.data();
  EXPECT_TRUE(std::equal(gs.begin(), gs.end(), es.begin()));
  EXPECT_EQ(d.runtime().xfer_retries(), 1);
}

// --- RuntimeOptions validation (CLF507) -------------------------------------

TEST(RuntimeOptionsTest, ConstructorRejectsNonPositiveKnobs) {
  ocl::RuntimeOptions bad;
  bad.watchdog_timeout = kSimTimeZero;
  try {
    ocl::ValidateRuntimeOptions(bad);
    FAIL() << "expected CLF507";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF507");
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }

  ocl::RuntimeOptions bad2;
  bad2.retry.max_attempts = 0;
  EXPECT_THROW(ocl::ValidateRuntimeOptions(bad2), RuntimeFaultError);
  ocl::RuntimeOptions bad3;
  bad3.retry.backoff_multiplier = 0.0;
  EXPECT_THROW(ocl::ValidateRuntimeOptions(bad3), RuntimeFaultError);
  ocl::RuntimeOptions bad4;
  bad4.retry.backoff_base = SimTime::Us(-1.0);
  EXPECT_THROW(ocl::ValidateRuntimeOptions(bad4), RuntimeFaultError);
  ocl::RuntimeOptions bad5;
  bad5.retry.reprogram_cost = SimTime::Us(-1.0);
  EXPECT_THROW(ocl::ValidateRuntimeOptions(bad5), RuntimeFaultError);
  EXPECT_NO_THROW(ocl::ValidateRuntimeOptions(ocl::RuntimeOptions{}));
}

TEST(RuntimeOptionsTest, SettersValidateToo) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  EXPECT_THROW(rt.set_watchdog_timeout(kSimTimeZero), RuntimeFaultError);
  resilience::RetryPolicy p;
  p.max_attempts = -1;
  EXPECT_THROW(rt.set_retry_policy(p), RuntimeFaultError);
  // Valid values are accepted and applied.
  rt.set_watchdog_timeout(SimTime::Ms(1.0));
  p.max_attempts = 2;
  rt.set_retry_policy(p);
}

TEST(RuntimeOptionsTest, DeployOptionsValidateAtCompileTime) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions opts = LenetPipelinedOptions();
  opts.runtime.watchdog_timeout = SimTime::Us(-5.0);
  try {
    (void)core::Deployment::Compile(net, opts);
    FAIL() << "expected CLF507 at compile time";
  } catch (const RuntimeFaultError& e) {
    EXPECT_EQ(e.code(), "CLF507");
  }
}

TEST(RuntimeOptionsTest, CustomWatchdogShortensHangDetection) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions opts = LenetPipelinedOptions();
  opts.runtime.watchdog_timeout = SimTime::Ms(2.0);
  auto d = core::Deployment::Compile(net, opts);
  ASSERT_TRUE(d.ok());

  FaultPlan plan;
  plan.specs.push_back(ParseFaultSpec("hang:k_conv1"));
  d.runtime().set_fault_injector(std::make_shared<FaultInjector>(plan));
  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);
  const SimTime before = d.runtime().now();
  EXPECT_THROW((void)d.Run(image, true), RuntimeFaultError);
  // Detection cost is bounded by the configured watchdog plus the batch's
  // own work, far under the 100ms default.
  EXPECT_LT(d.runtime().now() - before, SimTime::Ms(50.0));
}

TEST(Fallback, FirstAttemptSuccessIsNotARecovery) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  const auto result =
      core::CompileWithFallback(net, LenetPipelinedOptions(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.recovered());
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_EQ(result.attempts[0].status, "ok");
  EXPECT_DOUBLE_EQ(
      result.deployment->telemetry().registry.gauge("fallback.recovered")
          .value(),
      0.0);
}

}  // namespace
}  // namespace clflow
