// Tests for the high-availability execution layer: the ReplicaSet health
// state machine and circuit breaker, bit-exact failover, graceful
// degradation to the folded fallback, the ha.* accounting gauges, and the
// deterministic chaos campaign with its four recovery invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "graph/graph.hpp"
#include "ha/chaos.hpp"
#include "ha/replica_set.hpp"
#include "nets/nets.hpp"
#include "obs/metrics.hpp"

namespace clflow {
namespace {

using ha::BoardHealth;
using ha::ChaosOptions;
using ha::HaOptions;
using ha::HaRunResult;
using ha::ReplicaSet;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::ParseFaultSpec;

core::DeployOptions LenetOptions() {
  core::DeployOptions opts;
  opts.mode = core::ExecutionMode::kPipelined;
  opts.recipe = core::PipelineAutorun();
  opts.recipe.concurrent_execution = true;
  opts.board = fpga::Stratix10SX();
  // A tight watchdog keeps hang scenarios cheap in simulated time.
  opts.runtime.watchdog_timeout = SimTime::Ms(5.0);
  return opts;
}

std::shared_ptr<FaultInjector> Plan(std::vector<std::string> specs,
                                    std::uint64_t seed = 17) {
  FaultPlan plan;
  plan.seed = seed;
  for (const auto& s : specs) plan.specs.push_back(ParseFaultSpec(s));
  return std::make_shared<FaultInjector>(plan);
}

/// A plan that hangs k_conv1 on its first `n` invocations: the board
/// faults on its first n batches (CLF502 each time).
std::shared_ptr<FaultInjector> DeadBoard(int n = 64) {
  std::vector<std::string> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    specs.push_back("hang:k_conv1:" + std::to_string(i));
  }
  return Plan(std::move(specs));
}

Tensor Oracle(const ReplicaSet& rs, const graph::Graph& fused,
              const Tensor& input) {
  (void)rs;
  return graph::Execute(fused, input, 1);
}

void ExpectBitExact(const Tensor& got, const Tensor& expected) {
  const Tensor g = got.Reshaped(expected.shape());
  const auto gs = g.data();
  const auto es = expected.data();
  ASSERT_EQ(gs.size(), es.size());
  EXPECT_TRUE(std::equal(gs.begin(), gs.end(), es.begin()));
}

TEST(Ha, FailoverReissuesBatchBitExactly) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  ReplicaSet rs(net, LenetOptions(), {.replicas = 2});
  rs.set_fault_injector(0, Plan({"hang:k_conv1:0"}));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  const HaRunResult r = rs.Run(image, /*functional=*/true);

  EXPECT_EQ(r.board, 1);  // board 0 faulted, board 1 served
  EXPECT_EQ(r.failovers(), 1);
  EXPECT_FALSE(r.used_fallback);
  ASSERT_EQ(r.failed_attempts.size(), 1u);
  EXPECT_EQ(r.failed_attempts[0].board, 0);
  EXPECT_EQ(r.failed_attempts[0].code, "CLF502");
  EXPECT_GT(r.recovery_time, kSimTimeZero);
  ExpectBitExact(r.output,
                 Oracle(rs, rs.replica(1).fused_graph(), image));

  // One CLF509 failover note landed in the diagnostics.
  EXPECT_EQ(rs.diagnostics().ByCode("CLF509").size(), 1u);
  // The fault degraded board 0; one more fault would quarantine it.
  EXPECT_EQ(rs.health(0), BoardHealth::kDegraded);
  EXPECT_EQ(rs.health(1), BoardHealth::kHealthy);
}

TEST(Ha, EventIdsStayUniqueAcrossFailoverReplays) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  ReplicaSet rs(net, LenetOptions(), {.replicas = 2});
  rs.set_fault_injector(0, Plan({"hang:k_conv1:0", "hang:k_conv1:2"}));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  // Three requests: two fault on board 0 (abort + failover to board 1),
  // one serves on board 0 cleanly in between.
  for (int i = 0; i < 3; ++i) (void)rs.Run(image, /*functional=*/true);

  for (int b = 0; b < rs.num_replicas(); ++b) {
    const auto& pool = rs.replica(b).runtime().event_pool();
    // Aborted batches recycle slots, but every recorded event -- kept or
    // abandoned -- got its own id: ids are strictly increasing in record
    // order and the total covers live plus discarded events.
    std::uint64_t prev = 0;
    for (const auto view : pool) {
      EXPECT_GT(view.id, prev);
      prev = view.id;
    }
    EXPECT_GE(pool.total_recorded(), pool.size());
    EXPECT_LE(prev, pool.total_recorded());
  }
}

TEST(Ha, CircuitBreakerQuarantinesAndHalfOpenProbeRecovers) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 2;
  ha.cooldown_batches = 2;
  ReplicaSet rs(net, LenetOptions(), ha);
  // Two hard faults on board 0's first two served batches, then clean.
  rs.set_fault_injector(0, Plan({"hang:k_conv1:0", "hang:k_conv1:1"}));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  // Batch 1: board 0 faults (degraded), board 1 serves.
  (void)rs.Run(image, false);
  EXPECT_EQ(rs.health(0), BoardHealth::kDegraded);
  // Batch 2: round-robin sends it to board 0 again; second consecutive
  // fault trips the breaker.
  (void)rs.Run(image, false);
  EXPECT_EQ(rs.health(0), BoardHealth::kQuarantined);
  EXPECT_EQ(rs.board_state(0).quarantines, 1);
  EXPECT_EQ(rs.diagnostics().ByCode("CLF508").size(), 1u);

  // The quarantine batch itself ticked the cooldown once; one more batch
  // from board 1 runs it out and the breaker goes half-open.
  (void)rs.Run(image, false);
  EXPECT_EQ(rs.health(0), BoardHealth::kRecovering);

  // The next batch is board 0's half-open probe; its plan is exhausted so
  // the probe succeeds and the breaker closes.
  const HaRunResult probe = rs.Run(image, false);
  EXPECT_EQ(probe.board, 0);
  EXPECT_EQ(rs.health(0), BoardHealth::kHealthy);
  EXPECT_GE(rs.board_state(0).probes, 1);
}

TEST(Ha, FailedProbeReopensBreaker) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 1;
  ha.cooldown_batches = 2;
  ReplicaSet rs(net, LenetOptions(), ha);
  rs.set_fault_injector(0, DeadBoard(8));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  (void)rs.Run(image, false);  // board 0 faults -> quarantined immediately
  EXPECT_EQ(rs.health(0), BoardHealth::kQuarantined);
  (void)rs.Run(image, false);  // cooldown expires -> recovering
  EXPECT_EQ(rs.health(0), BoardHealth::kRecovering);
  (void)rs.Run(image, false);  // probe fails -> quarantined again
  EXPECT_EQ(rs.health(0), BoardHealth::kQuarantined);
  EXPECT_EQ(rs.board_state(0).quarantines, 2);
}

TEST(Ha, AllQuarantinedDegradesToFoldedFallback) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 1;
  ha.cooldown_batches = 64;  // nobody comes back during the test
  ReplicaSet rs(net, LenetOptions(), ha);
  rs.set_fault_injector(0, DeadBoard());
  rs.set_fault_injector(1, DeadBoard());

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  const HaRunResult r = rs.Run(image, /*functional=*/true);
  EXPECT_TRUE(r.used_fallback);
  EXPECT_EQ(r.board, -1);
  EXPECT_EQ(r.failovers(), 2);  // both boards failed first
  ASSERT_TRUE(rs.fallback().has_value());
  ExpectBitExact(r.output,
                 graph::Execute(rs.fallback()->fused_graph(), image, 1));
  EXPECT_EQ(rs.diagnostics().ByCode("CLF510").size(), 1u);

  // Later batches keep completing from the fallback without recompiling.
  const HaRunResult r2 = rs.Run(image, /*functional=*/true);
  EXPECT_TRUE(r2.used_fallback);
  EXPECT_EQ(rs.fallback_runs(), 2);
  EXPECT_EQ(rs.batches_completed(), 2);
}

TEST(Ha, AllowFallbackFalseRethrowsLastFault) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 1;
  ha.cooldown_batches = 64;
  ha.allow_fallback = false;
  ReplicaSet rs(net, LenetOptions(), ha);
  rs.set_fault_injector(0, DeadBoard());
  rs.set_fault_injector(1, DeadBoard());

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  EXPECT_THROW((void)rs.Run(image, false), RuntimeFaultError);
}

TEST(Ha, AccountingBalancesAndGaugesAgree) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 3;
  ha.quarantine_after = 2;
  ha.cooldown_batches = 2;
  ReplicaSet rs(net, LenetOptions(), ha);
  rs.set_fault_injector(0, Plan({"hang:k_conv1:0", "xfer-fail:write:1:8"}));
  rs.set_fault_injector(2, Plan({"corrupt:k_conv1:0:8"}));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  constexpr int kBatches = 9;
  for (int i = 0; i < kBatches; ++i) (void)rs.Run(image, false);

  EXPECT_EQ(rs.batches_requested(), kBatches);
  EXPECT_EQ(rs.batches_completed(), kBatches);
  std::int64_t dispatched = 0, completed = 0, faults = 0;
  for (int b = 0; b < rs.num_replicas(); ++b) {
    const ha::BoardState& st = rs.board_state(b);
    EXPECT_EQ(st.dispatched, st.completed + st.faults) << "board " << b;
    dispatched += st.dispatched;
    completed += st.completed;
    faults += st.faults;
  }
  EXPECT_EQ(dispatched, rs.attempts());
  EXPECT_EQ(completed + rs.fallback_runs(), rs.batches_completed());
  EXPECT_EQ(faults, rs.failovers());

  obs::Registry reg;
  rs.ExportMetrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("ha.replicas").value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge("ha.batches.requested").value(),
                   static_cast<double>(kBatches));
  EXPECT_DOUBLE_EQ(reg.gauge("ha.batches.completed").value(),
                   static_cast<double>(kBatches));
  EXPECT_DOUBLE_EQ(reg.gauge("ha.attempts").value(),
                   static_cast<double>(rs.attempts()));
  double gauge_dispatched = 0.0;
  for (int b = 0; b < rs.num_replicas(); ++b) {
    // Boards export under their BoardLabel ("s10sx0"), not a bare index.
    gauge_dispatched +=
        reg.gauge("ha.board.dispatched", {{"board", rs.BoardLabel(b)}})
            .value();
  }
  EXPECT_DOUBLE_EQ(gauge_dispatched, static_cast<double>(rs.attempts()));
}

TEST(Ha, HeartbeatProbesFeedHealthAndCooldowns) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 1;
  ha.cooldown_batches = 2;
  ReplicaSet rs(net, LenetOptions(), ha);
  rs.set_fault_injector(0, Plan({"hang:k_conv1:0"}));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  rs.Heartbeat(image);  // board 0's probe faults -> quarantined
  EXPECT_EQ(rs.health(0), BoardHealth::kQuarantined);
  EXPECT_EQ(rs.health(1), BoardHealth::kHealthy);
  rs.Heartbeat(image);  // quarantined board skipped; cooldown expires
  EXPECT_EQ(rs.health(0), BoardHealth::kRecovering);
  rs.Heartbeat(image);  // recovering board probes clean -> healthy
  EXPECT_EQ(rs.health(0), BoardHealth::kHealthy);
  // Heartbeats never touch the client-batch ledger.
  EXPECT_EQ(rs.batches_requested(), 0);
  EXPECT_EQ(rs.batches_completed(), 0);
  EXPECT_GE(rs.board_state(1).probes, 3);
}

TEST(Ha, QuarantineDumpsAreSequencedPerBoard) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 1;
  ha.cooldown_batches = 1;
  ha.flightrec_prefix = "test_ha_q_";
  ReplicaSet rs(net, LenetOptions(), ha);
  rs.set_fault_injector(0, DeadBoard(8));

  Tensor image = Tensor::Random(net.node(net.input_id()).output_shape, rng,
                                0.0f, 1.0f);
  // Quarantine board 0 twice: the first fault quarantines it, the one-batch
  // cooldown half-opens it immediately, and the failed probe re-quarantines.
  (void)rs.Run(image, false);
  (void)rs.Run(image, false);
  ASSERT_EQ(rs.board_state(0).quarantines, 2);

  const std::string first = "test_ha_q_board0_quarantine_flightrec.json";
  const std::string second = "test_ha_q_board0_quarantine_flightrec.1.json";
  std::ifstream f1(first), f2(second);
  EXPECT_TRUE(f1.good()) << first;
  EXPECT_TRUE(f2.good()) << second;
  f1.close();
  f2.close();
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(Ha, RejectsDegenerateOptions) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  EXPECT_THROW(ReplicaSet(net, LenetOptions(), {.replicas = 0}), Error);
  HaOptions bad;
  bad.quarantine_after = 0;
  EXPECT_THROW(ReplicaSet(net, LenetOptions(), bad), Error);
}

// --- Chaos campaign ---------------------------------------------------------

TEST(Chaos, TwoHundredSeededScenariosHoldAllInvariants) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  ChaosOptions copts;
  copts.scenarios = 200;
  copts.jobs = HardwareThreads();
  const ha::ChaosReport rep =
      ha::RunChaosCampaign(net, LenetOptions(), copts);
  EXPECT_TRUE(rep.ok()) << rep.SummaryTable();
  EXPECT_EQ(rep.passed, 200);
  EXPECT_EQ(rep.failed, 0);
  // The sweep must actually exercise the recovery machinery, not just
  // pass vacuously.
  int failover_scenarios = 0, faulted_scenarios = 0;
  for (const auto& s : rep.scenarios) {
    if (s.failovers > 0) ++failover_scenarios;
    if (s.recovery_action != "none") ++faulted_scenarios;
  }
  EXPECT_GT(failover_scenarios, 10);
  EXPECT_GT(faulted_scenarios, 50);
}

TEST(Chaos, DigestIsIdenticalAcrossRerunsAndThreadCounts) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  ChaosOptions copts;
  copts.scenarios = 40;
  copts.jobs = 1;
  const auto serial = ha::RunChaosCampaign(net, LenetOptions(), copts);
  const auto serial2 = ha::RunChaosCampaign(net, LenetOptions(), copts);
  copts.jobs = 4;
  const auto parallel = ha::RunChaosCampaign(net, LenetOptions(), copts);
  EXPECT_TRUE(serial.ok()) << serial.SummaryTable();
  EXPECT_EQ(serial.Digest(), serial2.Digest());
  EXPECT_EQ(serial.Digest(), parallel.Digest());
}

TEST(Chaos, DifferentSeedsProduceDifferentSweeps) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  ChaosOptions copts;
  copts.scenarios = 10;
  const auto a = ha::RunChaosCampaign(net, LenetOptions(), copts);
  copts.seed = 777;
  const auto b = ha::RunChaosCampaign(net, LenetOptions(), copts);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(Chaos, ReportSerializesScenarioTable) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  ChaosOptions copts;
  copts.scenarios = 5;
  const auto rep = ha::RunChaosCampaign(net, LenetOptions(), copts);
  ASSERT_EQ(rep.scenarios.size(), 5u);
  const std::string json = rep.ToJson();
  EXPECT_NE(json.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_action\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"pass\""), std::string::npos);
  for (const auto& s : rep.scenarios) {
    EXPECT_FALSE(s.fault_desc.empty());
    EXPECT_NE(json.find(std::string("\"index\": ") + std::to_string(s.index)),
              std::string::npos);
  }
  const std::string summary = rep.SummaryTable();
  EXPECT_NE(summary.find("5 passed"), std::string::npos);
}

}  // namespace
}  // namespace clflow
