// Property-style randomized sweeps over the compiler stack. Each property
// is checked across many seeded-random shapes/schedules rather than a few
// hand-picked cases:
//
//   P1. Any legal conv schedule computes exactly what the reference does.
//   P2. Schedule transformations never change kernel semantics.
//   P3. Analysis invariants: unrolling multiplies spatial ops and divides
//       trips; traffic is conserved across coalescing decisions.
//   P4. Fusion preserves whole-graph semantics on random DAGs.
//   P5. Quantization error is bounded by the step size.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "cpu/ops.hpp"
#include "graph/graph.hpp"
#include "ir/analysis.hpp"
#include "ir/interp.hpp"
#include "ir/op_kernels.hpp"
#include "ir/passes.hpp"
#include "quant/quantize.hpp"

namespace clflow {
namespace {

std::int64_t RandomDivisorLE(Rng& rng, std::int64_t n, std::int64_t limit) {
  std::vector<std::int64_t> divisors;
  for (std::int64_t d = 1; d <= std::min(n, limit); ++d) {
    if (n % d == 0) divisors.push_back(d);
  }
  return divisors[rng.Below(divisors.size())];
}

// P1: random conv specs and legal schedules match the reference op.
TEST(Property, RandomConvSchedulesMatchReference) {
  Rng rng(1234);
  for (int trial = 0; trial < 24; ++trial) {
    const std::int64_t f = 1 + 2 * static_cast<std::int64_t>(rng.Below(2));
    const std::int64_t stride = 1 + static_cast<std::int64_t>(rng.Below(2));
    const std::int64_t c1 = 1 + static_cast<std::int64_t>(rng.Below(8));
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng.Below(8));
    // Choose h1 so the output extent is positive and stride-aligned.
    const std::int64_t h2 = 2 + static_cast<std::int64_t>(rng.Below(6));
    const std::int64_t h1 = (h2 - 1) * stride + f;
    const bool bias = rng.Below(2) == 0;
    const Activation act = static_cast<Activation>(rng.Below(3));

    ir::ConvSpec spec{.c1 = c1, .h1 = h1, .w1 = h1, .k = k, .f = f,
                      .stride = stride, .has_bias = bias, .activation = act};
    ir::ConvSchedule sched;
    sched.fuse_activation = true;
    sched.cached_writes = true;
    sched.unroll_filter = rng.Below(2) == 0;
    sched.tile_c1 = RandomDivisorLE(rng, c1, 4);
    sched.tile_w2 = RandomDivisorLE(rng, h2, 4);
    if (f == 1) sched.tile_c2 = RandomDivisorLE(rng, k, 4);

    Tensor input = Tensor::Random(Shape{1, c1, h1, h1}, rng);
    Tensor weights = Tensor::Random(Shape{k, c1, f, f}, rng);
    Tensor b = bias ? Tensor::Random(Shape{k}, rng) : Tensor();
    Tensor expected =
        cpu::Conv2d(input, weights, b, {.stride = stride, .activation = act});

    auto bk = ir::BuildConv2dKernel(spec, sched, "prop_conv");
    Tensor in3 = input.Reshaped(Shape{c1, h1, h1});
    Tensor out(Shape{k, h2, h2});
    ir::InterpEnv env;
    env.BindBuffer(bk.input, in3.data());
    env.BindBuffer(bk.weights, weights.data());
    if (b.defined()) env.BindBuffer(bk.bias, b.data());
    env.BindBuffer(bk.output, out.data());
    ir::RunKernel(bk.kernel, env);

    EXPECT_LT(Tensor::MaxRelDiff(out.Reshaped(expected.shape()), expected,
                                 1e-3f),
              2e-3f)
        << "trial " << trial << ": c1=" << c1 << " k=" << k << " f=" << f
        << " s=" << stride << " h1=" << h1 << " tiles " << sched.tile_c1
        << "/" << sched.tile_w2 << "/" << sched.tile_c2;
  }
}

// P2: SplitLoop at every divisor preserves matrix-vector semantics.
TEST(Property, SplitAtEveryDivisorPreservesSemantics) {
  Rng rng(99);
  constexpr std::int64_t kRows = 6, kCols = 24;
  Tensor x = Tensor::Random(Shape{kCols}, rng);
  Tensor y = Tensor::Random(Shape{kRows, kCols}, rng);

  auto build = [&] {
    auto xb = ir::MakeBuffer("x", {ir::IntImm(kCols)}, ir::MemScope::kGlobal,
                             true);
    auto yb = ir::MakeBuffer("Y", {ir::IntImm(kRows), ir::IntImm(kCols)},
                             ir::MemScope::kGlobal, true);
    auto cb = ir::MakeBuffer("c", {ir::IntImm(kRows)}, ir::MemScope::kGlobal,
                             true);
    auto acc =
        ir::MakeBuffer("acc", {ir::IntImm(1)}, ir::MemScope::kPrivate);
    auto i = ir::MakeVar("i");
    auto kk = ir::MakeVar("k");
    ir::Kernel kern;
    kern.name = "mv";
    kern.buffer_args = {xb, yb, cb};
    kern.local_buffers = {acc};
    kern.body = ir::For(
        i, ir::IntImm(0), ir::IntImm(kRows),
        ir::Block(
            {ir::Store(acc, {ir::IntImm(0)}, ir::FloatImm(0.0)),
             ir::For(kk, ir::IntImm(0), ir::IntImm(kCols),
                     ir::Store(acc, {ir::IntImm(0)},
                               ir::Add(ir::Load(acc, {ir::IntImm(0)}),
                                       ir::Mul(ir::Load(xb, {ir::VarRef(kk)}),
                                               ir::Load(yb, {ir::VarRef(i),
                                                             ir::VarRef(kk)}))))),
             ir::Store(cb, {ir::VarRef(i)}, ir::Load(acc, {ir::IntImm(0)}))}));
    struct Built {
      ir::Kernel kernel;
      ir::BufferPtr x, y, c;
    };
    return Built{std::move(kern), xb, yb, cb};
  };

  auto run = [&](const auto& built) {
    Tensor c(Shape{kRows});
    ir::InterpEnv env;
    Tensor xc = x.Clone(), yc = y.Clone();
    env.BindBuffer(built.x, xc.data());
    env.BindBuffer(built.y, yc.data());
    env.BindBuffer(built.c, c.data());
    ir::RunKernel(built.kernel, env);
    return c;
  };

  auto baseline = build();
  const Tensor expected = run(baseline);
  for (std::int64_t factor : {1, 2, 3, 4, 6, 8, 12, 24}) {
    auto variant = build();
    variant.kernel.body = ir::SplitLoop(variant.kernel.body, "k", factor);
    const Tensor actual = run(variant);
    EXPECT_LT(Tensor::MaxRelDiff(actual, expected, 1e-4f), 1e-4f)
        << "factor " << factor;
  }
}

// P3: analysis invariants under unrolling.
TEST(Property, UnrollConservesTrafficAndScalesOps) {
  for (std::int64_t tile : {1, 2, 4, 8}) {
    auto bk = ir::BuildConv2dKernel(
        {.c1 = 8, .h1 = 10, .w1 = 10, .k = 8, .f = 1, .stride = 1,
         .has_bias = false},
        {.fuse_activation = true, .cached_writes = true,
         .tile_c1 = tile},
        "sweep");
    const auto stats = ir::AnalyzeKernel(bk.kernel);
    // Spatial MACs scale with the tile.
    EXPECT_EQ(stats.fp_mul_spatial, tile);
    // Total weight traffic is invariant across tilings: coalescing widens
    // accesses but moves the same bytes. The schedule re-reads the weight
    // row once per output position: K * H2 * W2 * C1 elements.
    double wt_elems = 0;
    for (const auto& site : stats.accesses) {
      if (site.buffer == "wt") wt_elems += site.elems_per_invocation;
    }
    EXPECT_DOUBLE_EQ(wt_elems, 8.0 * 10.0 * 10.0 * 8.0);
    // Cycles shrink with the tile (within rounding of loop overheads).
    if (tile > 1) {
      auto base = ir::AnalyzeKernel(
          ir::BuildConv2dKernel({.c1 = 8, .h1 = 10, .w1 = 10, .k = 8, .f = 1,
                                 .stride = 1, .has_bias = false},
                                {.fuse_activation = true,
                                 .cached_writes = true},
                                "base")
              .kernel);
      EXPECT_LT(stats.compute_cycles, base.compute_cycles);
    }
  }
}

// P4: fusion preserves semantics on randomized branchy graphs.
TEST(Property, FusionPreservesRandomGraphSemantics) {
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng(500 + static_cast<std::uint64_t>(trial));
    graph::Graph g;
    const std::int64_t c = 2 + static_cast<std::int64_t>(rng.Below(3));
    auto x = g.AddInput(Shape{1, c, 8, 8});
    auto a = g.AddConv2d(
        x, Tensor::HeNormal(Shape{c, c, 3, 3}, rng, c * 9), Tensor(), 1,
        "c1");
    a = g.AddActivation(a, Activation::kRelu, "r1");
    auto pad = g.AddPad(a, 1, "p1");
    auto b = g.AddConv2d(
        pad, Tensor::HeNormal(Shape{c, c, 3, 3}, rng, c * 9),
        Tensor::Random(Shape{c}, rng), 1, "c2");
    if (rng.Below(2) == 0) b = g.AddActivation(b, Activation::kRelu6, "r2");
    auto sum = g.AddResidual(b, a, "res");
    g.AddActivation(sum, Activation::kRelu, "r3");

    graph::Graph fused = graph::FuseOperators(g);
    EXPECT_LT(fused.nodes().size(), g.nodes().size());
    Tensor input = Tensor::Random(Shape{1, c, 8, 8}, rng);
    EXPECT_LT(Tensor::MaxRelDiff(graph::Execute(fused, input),
                                 graph::Execute(g, input), 1e-4f),
              1e-4f)
        << "trial " << trial;
  }
}

// P5: quantization error bounded by half a step, across ranges.
TEST(Property, QuantizationErrorBoundedByStep) {
  Rng rng(777);
  for (float range : {0.01f, 0.5f, 1.0f, 10.0f, 300.0f}) {
    Tensor t = Tensor::Random(Shape{512}, rng, -range, range);
    quant::QTensor q = quant::QuantizeAuto(t);
    Tensor back = quant::Dequantize(q);
    EXPECT_LE(Tensor::MaxAbsDiff(t, back), q.scale * 0.5f + 1e-6f)
        << "range " << range;
  }
}

}  // namespace
}  // namespace clflow
