// Tests for the simulated OpenCL runtime: queue semantics, channels,
// autorun, concurrent execution, profiling, and the functional layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dataflow_checker.hpp"
#include "common/error.hpp"
#include "ir/op_kernels.hpp"
#include "ocl/runtime.hpp"

namespace clflow::ocl {
namespace {

/// A bitstream with `n` trivial kernels named k0..k(n-1).
struct TestDesign {
  std::vector<ir::BuiltKernel> built;
  fpga::Bitstream bitstream;
};

TestDesign MakeDesign(int n, const fpga::BoardSpec& board) {
  TestDesign d;
  std::vector<fpga::SynthInput> inputs;
  d.built.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    d.built.push_back(
        ir::BuildCopyKernel(1024, "k" + std::to_string(i)));
  }
  for (const auto& b : d.built) inputs.push_back({&b.kernel, {}});
  d.bitstream = fpga::Synthesize(inputs, board);
  return d;
}

ir::KernelStats FixedCycles(double cycles) {
  ir::KernelStats stats;
  stats.compute_cycles = cycles;
  return stats;
}

TEST(Runtime, RejectsFailedBitstream) {
  fpga::Bitstream bad;
  bad.status = fpga::SynthStatus::kFitError;
  EXPECT_THROW(Runtime rt(bad), Error);
}

TEST(Runtime, WriteKernelReadOrdering) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  auto buf = rt.CreateBuffer(1024);
  std::vector<float> src(1024, 2.5f), dst(1024, 0.0f);

  rt.EnqueueWrite(0, buf, src);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  rt.EnqueueRead(0, buf, dst);
  const SimTime t = rt.Finish();

  // Functional copy happened.
  EXPECT_FLOAT_EQ(dst[7], 2.5f);
  // Events are ordered: write < kernel < read.
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_LE(ev[0].end, ev[1].start);
  EXPECT_LE(ev[1].end, ev[2].start);
  EXPECT_EQ(t.ps(), ev[2].end.ps());
}

TEST(Runtime, InOrderQueueSerializesAndPaysLaunch) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(10000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  rt.EnqueueKernel(0, {.name = "k1", .stats = FixedCycles(10000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  rt.Finish();
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 2u);
  // Second kernel starts at least launch-overhead after the first ends.
  const double gap_us = (ev[1].start - ev[0].end).us();
  EXPECT_NEAR(gap_us, fpga::Stratix10SX().kernel_launch_us, 1.0);
}

TEST(Runtime, ConcurrentQueuesOverlap) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  const int q1 = rt.CreateQueue();
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  rt.EnqueueKernel(q1, {.name = "k1", .stats = FixedCycles(100000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  const SimTime t = rt.Finish();
  const auto& ev = rt.events();
  // Independent kernels on separate queues overlap almost entirely.
  EXPECT_LT(ev[1].start, ev[0].end);
  EXPECT_LT(t.us(), 2.0 * ev[0].duration().us());
}

TEST(Runtime, ChannelsChainProducerToConsumer) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  const int q1 = rt.CreateQueue();
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(50000),
                       .functional = {},
                       .reads_channels = {},
                       .writes_channels = {"ch"}});
  rt.EnqueueKernel(q1, {.name = "k1", .stats = FixedCycles(50000),
                        .functional = {},
                        .reads_channels = {"ch"},
                        .writes_channels = {}});
  rt.Finish();
  const auto& ev = rt.events();
  EXPECT_GE(ev[1].start, ev[0].end);
}

TEST(Runtime, ChannelWithoutProducerThrows) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  EXPECT_THROW(rt.EnqueueKernel(0, {.name = "k0",
                                    .stats = FixedCycles(10),
                                    .functional = {},
                                    .reads_channels = {"nope"},
                                    .writes_channels = {}}),
               RuntimeApiError);
}

TEST(Runtime, ChannelWithoutProducerNamesTheStaticCode) {
  // The dynamic failure cites the same CLF code the static dataflow
  // checker uses, and the static checker fires on the equivalent plan
  // before any runtime exists (regression for the static-fires-first
  // contract).
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  try {
    rt.EnqueueKernel(0, {.name = "k0",
                         .stats = FixedCycles(10),
                         .functional = {},
                         .reads_channels = {"nope"},
                         .writes_channels = {}});
    FAIL() << "expected RuntimeApiError";
  } catch (const RuntimeApiError& e) {
    EXPECT_NE(std::string(e.what()).find("CLF201"), std::string::npos)
        << e.what();
  }

  analysis::Plan plan;
  analysis::PlanStep step;
  step.kernel = "k0";
  step.reads = {"nope"};
  plan.steps.push_back(std::move(step));
  analysis::DiagnosticEngine engine;
  EXPECT_GT(analysis::CheckDataflow(plan, engine), 0);
  ASSERT_FALSE(engine.ByCode("CLF201").empty());
  EXPECT_EQ(engine.ByCode("CLF201")[0].severity, analysis::Severity::kError);
}

TEST(Runtime, SecondWriterOnChannelThrowsClf202) {
  // Intel channels are point-to-point; a second producer in one batch is
  // a CLF202 both statically and at (simulated) execution time.
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(10),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {"ch"}});
  try {
    rt.EnqueueKernel(0, {.name = "k1", .stats = FixedCycles(10),
                         .functional = {}, .reads_channels = {},
                         .writes_channels = {"ch"}});
    FAIL() << "expected RuntimeApiError";
  } catch (const RuntimeApiError& e) {
    EXPECT_NE(std::string(e.what()).find("CLF202"), std::string::npos)
        << e.what();
  }
}

TEST(Runtime, ChannelWriterTrackingResetsPerBatch) {
  // One writer per batch is legal across any number of batches.
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  for (int batch = 0; batch < 2; ++batch) {
    rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(10),
                         .functional = {}, .reads_channels = {},
                         .writes_channels = {"ch"}});
    rt.EnqueueKernel(0, {.name = "k1", .stats = FixedCycles(10),
                         .functional = {}, .reads_channels = {"ch"},
                         .writes_channels = {}});
    rt.Finish();
  }
  EXPECT_EQ(rt.kernel_usage().at("k0").invocations, 2);
}

TEST(Runtime, AutorunSkipsDispatchOverhead) {
  TestDesign d = MakeDesign(3, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(50000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {"a"}});
  rt.RunAutorun({.name = "k1", .stats = FixedCycles(50000), .functional = {},
                 .reads_channels = {"a"}, .writes_channels = {"b"}});
  rt.EnqueueKernel(0, {.name = "k2", .stats = FixedCycles(50000),
                       .functional = {}, .reads_channels = {"b"},
                       .writes_channels = {}});
  rt.Finish();
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 3u);
  // The autorun kernel starts the moment its channel is ready: no gap.
  EXPECT_EQ(ev[1].start.ps(), ev[0].end.ps());
  EXPECT_EQ(ev[1].queue, -1);
}

TEST(Runtime, UnknownKernelRejected) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  EXPECT_THROW(
      rt.EnqueueKernel(0, {.name = "ghost", .stats = FixedCycles(10), .functional = {},
       .reads_channels = {}, .writes_channels = {}}),
      RuntimeApiError);
}

TEST(Runtime, ProfilingSerializesHost) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());

  auto run = [&](bool profiling) {
    Runtime rt(d.bitstream);
    rt.set_profiling(profiling);
    const int q1 = rt.CreateQueue();
    rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
    rt.EnqueueKernel(q1, {.name = "k1", .stats = FixedCycles(100000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
    return rt.Finish();
  };
  // With the event profiler on, the host waits per command: no overlap.
  EXPECT_GT(run(true).us(), 1.8 * run(false).us() * 0.5);
  EXPECT_GT(run(true).us(), run(false).us());
}

TEST(Runtime, FinishResetsBatchAccounting) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  const SimTime first = rt.Finish();
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000), .functional = {}, .reads_channels = {}, .writes_channels = {}});
  const SimTime second = rt.Finish();
  EXPECT_NEAR(first.us(), second.us(), 5.0);
  EXPECT_GE(rt.now(), first + second - SimTime::Us(1));
}

TEST(Runtime, FunctionalFunctorRuns) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  int calls = 0;
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(10),
                       .functional = [&calls] { ++calls; },
                       .reads_channels = {}, .writes_channels = {}});
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(10), .functional = {},
                       .reads_channels = {}, .writes_channels = {}});
  EXPECT_EQ(calls, 1);
}

TEST(Runtime, WriteLargerThanBufferRejected) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  auto buf = rt.CreateBuffer(16);
  std::vector<float> big(32, 0.0f);
  EXPECT_THROW(rt.EnqueueWrite(0, buf, big), Error);
}

TEST(Runtime, QueueBusyPlusIdleSumsToMakespan) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  const int q1 = rt.CreateQueue();
  auto buf = rt.CreateBuffer(1024);
  std::vector<float> src(1024, 1.0f);
  rt.EnqueueWrite(0, buf, src);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(100000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  rt.EnqueueKernel(q1, {.name = "k1", .stats = FixedCycles(10000),
                        .functional = {}, .reads_channels = {},
                        .writes_channels = {}});
  const SimTime makespan = rt.Finish();
  for (int q = 0; q < rt.num_queues(); ++q) {
    const auto usage = rt.queue_usage(q);
    EXPECT_NEAR((usage.busy + usage.idle).us(), makespan.us(), 1e-6)
        << "queue " << q;
  }
  // The long-running queue 0 is busier than the short-running queue 1.
  EXPECT_GT(rt.queue_usage(0).busy, rt.queue_usage(q1).busy);
  EXPECT_LT(rt.queue_usage(0).idle, rt.queue_usage(q1).idle);
}

TEST(Runtime, ChannelStallAttributedToBlockedReader) {
  TestDesign d = MakeDesign(2, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  const int q1 = rt.CreateQueue();
  // Slow producer on queue 0; the reader on queue 1 is enqueued
  // immediately and must stall until the channel has data.
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(500000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {"ch"}});
  rt.EnqueueKernel(q1, {.name = "k1", .stats = FixedCycles(1000),
                        .functional = {}, .reads_channels = {"ch"},
                        .writes_channels = {}});
  rt.Finish();

  EXPECT_GT(rt.total_channel_stall(), kSimTimeZero);
  ASSERT_EQ(rt.channel_stall().count("ch"), 1u);
  EXPECT_GT(rt.channel_stall().at("ch"), kSimTimeZero);
  // The reader's profiled event carries its own stall time.
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].stall, kSimTimeZero);
  EXPECT_GT(ev[1].stall, kSimTimeZero);
  // The stall is roughly the producer's runtime (reader enqueued at ~0).
  EXPECT_GT(ev[1].stall.us(), 0.5 * ev[0].duration().us());
}

TEST(Runtime, TransferByteAccountingAndMetricsExport) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  auto buf = rt.CreateBuffer(1024);
  std::vector<float> src(1024, 1.0f), dst(1024, 0.0f);
  rt.EnqueueWrite(0, buf, src);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  rt.EnqueueRead(0, buf, dst);
  rt.Finish();

  EXPECT_EQ(rt.bytes_h2d(), 1024 * 4);
  EXPECT_EQ(rt.bytes_d2h(), 1024 * 4);
  EXPECT_EQ(rt.kernel_usage().at("k0").invocations, 1);

  obs::Registry reg;
  rt.ExportMetrics(reg, {{"board", "s10sx"}});
  EXPECT_DOUBLE_EQ(
      reg.gauge("ocl.xfer.h2d_bytes", {{"board", "s10sx"}}).value(),
      1024.0 * 4.0);
  EXPECT_GT(reg.gauge("ocl.queue.busy_us", {{"board", "s10sx"},
                                            {"queue", "0"}})
                .value(),
            0.0);
  EXPECT_GT(
      reg.gauge("ocl.kernel.total_us",
                {{"board", "s10sx"}, {"kernel", "k0"}})
          .value(),
      0.0);
}

TEST(Runtime, EmptyBatchMakespanIsZero) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  // Finish with nothing enqueued: zero makespan, no time advances.
  EXPECT_EQ(rt.Finish().ps(), 0);
  EXPECT_EQ(rt.now().ps(), 0);
  // Same after a real batch: an immediately-following empty Finish is a
  // zero-length batch, not a repeat of the previous makespan.
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(10000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  EXPECT_GT(rt.Finish().ps(), 0);
  EXPECT_EQ(rt.Finish().ps(), 0);
  EXPECT_EQ(rt.Finish().ps(), 0);
}

TEST(Runtime, ClearEventsKeepsCumulativeUsage) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(50000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  rt.Finish();
  const auto usage_before = rt.queue_usage(0);
  ASSERT_GT(usage_before.busy, kSimTimeZero);

  rt.ClearEvents();
  // The event log is gone but the accumulated accounting is not.
  EXPECT_TRUE(rt.events().empty());
  EXPECT_EQ(rt.queue_usage(0).busy.ps(), usage_before.busy.ps());
  EXPECT_EQ(rt.queue_usage(0).idle.ps(), usage_before.idle.ps());
  EXPECT_EQ(rt.kernel_usage().at("k0").invocations, 1);

  // A second batch keeps accumulating on top of the cleared log.
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(50000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  rt.Finish();
  EXPECT_EQ(rt.events().size(), 1u);
  EXPECT_GT(rt.queue_usage(0).busy, usage_before.busy);
  EXPECT_EQ(rt.kernel_usage().at("k0").invocations, 2);
}

TEST(EventPool, IdsAreStableAndNeverReused) {
  EventPool pool;
  const auto rec = [&pool](std::string_view label) {
    return pool.Record(label, CommandKind::kKernel, 0, SimTime(), SimTime(),
                       SimTime(), SimTime(), 0, 0, 0, 0);
  };
  const auto id1 = rec("alpha");
  const auto id2 = rec("beta");
  const auto id3 = rec("alpha");
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  EXPECT_EQ(id3, 3u);
  ASSERT_TRUE(pool.Find(id2).has_value());
  EXPECT_EQ(pool.Find(id2)->label, "beta");

  pool.Clear();
  EXPECT_TRUE(pool.empty());
  // Cleared ids are gone for good...
  EXPECT_FALSE(pool.Find(id1).has_value());
  EXPECT_FALSE(pool.Find(id3).has_value());
  // ...and never handed out again, even though slots are recycled.
  const auto id4 = rec("gamma");
  EXPECT_EQ(id4, 4u);
  EXPECT_EQ(pool.total_recorded(), 4u);
  ASSERT_TRUE(pool.Find(id4).has_value());
  EXPECT_EQ(pool.Find(id4)->label, "gamma");
}

TEST(EventPool, ClearRecyclesSlotsAndInternerDedupes) {
  EventPool pool;
  const std::string label = "k_conv_c32f64k3s1p1_b1_a1_node4";
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 8; ++i) {
      pool.Record(label, CommandKind::kKernel, i, SimTime(), SimTime(),
                  SimTime(), SimTime(), 0, 0, 0, 0);
    }
    EXPECT_EQ(pool.size(), 8u);
    pool.Clear();
  }
  // Steady state: the first batch's 8 slots serve every later batch, and
  // one interned copy serves all 80 records.
  EXPECT_EQ(pool.slots(), 8u);
  EXPECT_EQ(pool.free_slots(), 8u);
  EXPECT_EQ(pool.distinct_labels(), 1u);
  EXPECT_EQ(pool.total_recorded(), 80u);
}

TEST(EventPool, ViewsAndSnapshotAgreeInRecordOrder) {
  EventPool pool;
  for (int i = 0; i < 5; ++i) {
    pool.Record("ev" + std::to_string(i), CommandKind::kWriteBuffer, i,
                SimTime::Us(i), SimTime::Us(i + 1), SimTime::Us(i + 2),
                SimTime(), 100 + i, 7, static_cast<std::uint64_t>(i), 3);
  }
  const auto snap = pool.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  std::size_t i = 0;
  for (const auto view : pool) {
    EXPECT_EQ(view.label, snap[i].label);
    EXPECT_EQ(view.queue, snap[i].queue);
    EXPECT_EQ(view.start.ps(), snap[i].start.ps());
    EXPECT_EQ(view.bytes, snap[i].bytes);
    EXPECT_EQ(view.trace_id, snap[i].trace_id);
    EXPECT_EQ(view.span_id, snap[i].span_id);
    EXPECT_EQ(view.parent_span_id, snap[i].parent_span_id);
    ++i;
  }
  EXPECT_EQ(snap[3].label, "ev3");
  EXPECT_EQ(snap[3].queue, 3);
}

TEST(EventPool, LabelMemoVerifiesContentNotCallerPointer) {
  EventPool pool;
  // One caller buffer, mutated in place between records: same pointer,
  // same length, different bytes. The memo must never serve the stale
  // interned view for the new content.
  std::string buf = "kernel_label_variant_A";
  pool.Record(buf, CommandKind::kKernel, 0, SimTime(), SimTime(), SimTime(),
              SimTime(), 0, 0, 0, 0);
  buf.back() = 'B';
  pool.Record(buf, CommandKind::kKernel, 0, SimTime(), SimTime(), SimTime(),
              SimTime(), 0, 0, 0, 0);
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool[0].label, "kernel_label_variant_A");
  EXPECT_EQ(pool[1].label, "kernel_label_variant_B");
  EXPECT_EQ(pool.distinct_labels(), 2u);

  // Labels engineered into one memo set (equal length, equal first and
  // last byte) cycled many times: dedup and contents must hold however
  // the two-way memo evicts.
  const std::vector<std::string> colliders = {"xAAAAAz", "xBBBBBz",
                                              "xCCCCCz"};
  pool.Clear();
  for (int round = 0; round < 50; ++round) {
    for (const auto& s : colliders) {
      pool.Record(s, CommandKind::kKernel, 0, SimTime(), SimTime(),
                  SimTime(), SimTime(), 0, 0, 0, 0);
    }
  }
  EXPECT_EQ(pool.distinct_labels(), 5u);  // 2 from above + 3 colliders
  std::size_t i = 0;
  for (const auto view : pool) {
    EXPECT_EQ(view.label, colliders[i % colliders.size()]);
    ++i;
  }
}

TEST(Runtime, EventIdsKeepIncreasingAcrossClearEvents) {
  TestDesign d = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  rt.Finish();
  const std::uint64_t first_batch = rt.event_pool().total_recorded();
  ASSERT_GT(first_batch, 0u);
  rt.ClearEvents();

  rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(1000),
                       .functional = {}, .reads_channels = {},
                       .writes_channels = {}});
  rt.Finish();
  const auto& pool = rt.event_pool();
  EXPECT_EQ(pool.size(), 1u);
  // The second batch reuses the first batch's slots but mints fresh ids.
  EXPECT_EQ(pool.slots(), pool.size());
  EXPECT_GT(pool[0].id, first_batch);
  EXPECT_EQ(pool.total_recorded(), 2 * first_batch);
}

TEST(Runtime, BackToBackAutorunBatches) {
  // Two identical batches through an autorun middle stage: per-batch
  // channel state resets, the autorun kernel re-activates each batch, and
  // the makespans match.
  TestDesign d = MakeDesign(3, fpga::Stratix10SX());
  Runtime rt(d.bitstream);
  SimTime makespans[2];
  for (int batch = 0; batch < 2; ++batch) {
    rt.EnqueueKernel(0, {.name = "k0", .stats = FixedCycles(50000),
                         .functional = {}, .reads_channels = {},
                         .writes_channels = {"a"}});
    rt.RunAutorun({.name = "k1", .stats = FixedCycles(50000),
                   .functional = {}, .reads_channels = {"a"},
                   .writes_channels = {"b"}});
    rt.EnqueueKernel(0, {.name = "k2", .stats = FixedCycles(50000),
                         .functional = {}, .reads_channels = {"b"},
                         .writes_channels = {}});
    makespans[batch] = rt.Finish();
  }
  EXPECT_EQ(rt.kernel_usage().at("k1").invocations, 2);
  EXPECT_NEAR(makespans[0].us(), makespans[1].us(), 5.0);
  // Autorun activations are attributed to their own batch: the second
  // batch's autorun event starts after the first batch fully drained.
  const auto& ev = rt.events();
  ASSERT_EQ(ev.size(), 6u);
  EXPECT_GE(ev[4].start, ev[2].end);
  EXPECT_EQ(ev[4].queue, -1);
}

TEST(Runtime, S10mxWritesAreSlow) {
  // The paper's Figure 6.2: the S10MX spends most of its time on buffer
  // writes. Same transfer on both boards; S10MX must be much slower.
  TestDesign dmx = MakeDesign(1, fpga::Stratix10MX());
  TestDesign dsx = MakeDesign(1, fpga::Stratix10SX());
  Runtime rt_mx(dmx.bitstream);
  Runtime rt_sx(dsx.bitstream);
  auto bmx = rt_mx.CreateBuffer(1024);
  auto bsx = rt_sx.CreateBuffer(1024);
  std::vector<float> src(1024, 1.0f);
  rt_mx.EnqueueWrite(0, bmx, src);
  rt_sx.EnqueueWrite(0, bsx, src);
  EXPECT_GT(rt_mx.Finish().us(), 5.0 * rt_sx.Finish().us());
}

}  // namespace
}  // namespace clflow::ocl
