// Tests for the operator kernel builders: every naive and optimized
// schedule must compute exactly what the CPU reference operators compute
// (on small shapes, via the IR interpreter). This equivalence is what
// licenses the full-network benches to use the compiled reference ops for
// functional execution while the AOC model provides timing.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cpu/ops.hpp"
#include "ir/interp.hpp"
#include "ir/op_kernels.hpp"
#include "tensor/tensor.hpp"

namespace clflow::ir {
namespace {

/// Binds the role buffers of a built kernel to tensor storage and runs it.
class Runner {
 public:
  explicit Runner(const BuiltKernel& bk) : bk_(bk) {}

  Runner& Bind(const BufferPtr& buffer, Tensor& t) {
    if (buffer) env_.BindBuffer(buffer, t.data());
    return *this;
  }

  Runner& BindParam(const std::string& name, std::int64_t value) {
    auto it = bk_.params.find(name);
    if (it != bk_.params.end()) env_.BindVar(it->second, value);
    return *this;
  }

  /// Binds row-major stride parameters for a symbolic buffer, if present.
  Runner& BindStrides(const BufferPtr& buffer, const Shape& shape) {
    if (!buffer) return *this;
    const auto strides = shape.Strides();
    for (std::size_t d = 0; d < strides.size(); ++d) {
      BindParam(buffer->name + "_s" + std::to_string(d), strides[d]);
    }
    return *this;
  }

  void Run() {
    for (const auto& ws : bk_.workspaces) {
      std::int64_t elems = 1;
      for (const auto& dim : ws->shape) {
        // Workspace dims may be symbolic; evaluate through the env.
        elems *= static_cast<std::int64_t>(EvalScalar(dim, env_));
      }
      ws_storage_.emplace_back(static_cast<std::size_t>(elems), 0.0f);
      env_.BindBuffer(ws, ws_storage_.back());
    }
    RunKernel(bk_.kernel, env_);
  }

  InterpEnv& env() { return env_; }

 private:
  const BuiltKernel& bk_;
  InterpEnv env_;
  std::vector<std::vector<float>> ws_storage_;
};

struct ConvCase {
  std::string label;
  ConvSpec spec;
  ConvSchedule sched;
};

class ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalence, MatchesReferenceOp) {
  const auto& [label, spec, sched] = GetParam();
  Rng rng(101);
  Tensor input = Tensor::Random(Shape{1, spec.c1, spec.h1, spec.w1}, rng);
  const std::int64_t k_out = spec.depthwise ? spec.c1 : spec.k;
  Tensor weights =
      spec.depthwise
          ? Tensor::Random(Shape{spec.c1, spec.f, spec.f}, rng)
          : Tensor::Random(Shape{spec.k, spec.c1, spec.f, spec.f}, rng);
  Tensor bias = spec.has_bias ? Tensor::Random(Shape{k_out}, rng) : Tensor();

  // Reference.
  const cpu::Conv2dParams p{.stride = spec.stride, .pad = 0,
                            .activation = spec.activation};
  Tensor w4 = spec.depthwise
                  ? weights.Reshaped(Shape{spec.c1, 1, spec.f, spec.f})
                  : weights;
  Tensor expected =
      spec.depthwise
          ? cpu::DepthwiseConv2d(input, w4, bias, p)
          : cpu::Conv2d(input, w4, bias, p);

  // Built kernel through the interpreter.
  auto bk = BuildConv2dKernel(spec, sched, "conv_test");
  Tensor in3 = input.Reshaped(Shape{spec.c1, spec.h1, spec.w1});
  const Shape out_shape{k_out, expected.shape().height(),
                        expected.shape().width()};
  Tensor out(out_shape);
  Runner r(bk);
  r.Bind(bk.input, in3).Bind(bk.weights, weights).Bind(bk.output, out);
  if (bias.defined()) r.Bind(bk.bias, bias);
  if (sched.symbolic) {
    r.BindParam("C1", spec.c1).BindParam("HW", spec.h1).BindParam("K", spec.k);
    r.BindParam("ACT", static_cast<std::int64_t>(spec.activation));
    r.BindStrides(bk.input, Shape{spec.c1, spec.h1, spec.w1})
        .BindStrides(bk.weights, weights.shape())
        .BindStrides(bk.output, out_shape);
    for (const auto& ws : bk.workspaces) {
      r.BindStrides(ws, Shape{out_shape[1], out_shape[2]});
    }
  }
  r.Run();

  Tensor out4 = out.Reshaped(expected.shape());
  EXPECT_LT(Tensor::MaxRelDiff(out4, expected, 1e-3f), 2e-3f) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ConvEquivalence,
    ::testing::Values(
        ConvCase{"naive",
                 {.c1 = 3, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {}},
        ConvCase{"naive_unrolled_filter",
                 {.c1 = 3, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.unroll_filter = true}},
        ConvCase{"naive_stride2",
                 {.c1 = 2, .h1 = 9, .w1 = 9, .k = 3, .f = 3, .stride = 2,
                  .has_bias = false, .activation = Activation::kNone},
                 {}},
        ConvCase{"fused_cached",
                 {.c1 = 3, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true}},
        ConvCase{"tiled_c1",
                 {.c1 = 8, .h1 = 6, .w1 = 6, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true, .tile_c1 = 4}},
        ConvCase{"tiled_w2",
                 {.c1 = 4, .h1 = 10, .w1 = 10, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu6},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true, .tile_w2 = 4}},
        ConvCase{"conv1x1_tiled_3d",
                 {.c1 = 8, .h1 = 7, .w1 = 7, .k = 8, .f = 1, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.fuse_activation = true, .cached_writes = true,
                  .tile_c1 = 4, .tile_w2 = 7, .tile_c2 = 2}},
        ConvCase{"depthwise_naive",
                 {.c1 = 4, .h1 = 8, .w1 = 8, .f = 3, .stride = 1,
                  .depthwise = true, .has_bias = true,
                  .activation = Activation::kRelu6},
                 {}},
        ConvCase{"depthwise_optimized",
                 {.c1 = 4, .h1 = 16, .w1 = 16, .f = 3, .stride = 2,
                  .depthwise = true, .has_bias = true,
                  .activation = Activation::kRelu6},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true, .tile_w2 = 7}},
        ConvCase{"weight_cache",
                 {.c1 = 3, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true, .weight_cache = true}},
        ConvCase{"symbolic_unpinned",
                 {.c1 = 4, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true, .symbolic = true}},
        ConvCase{"symbolic_pinned",
                 {.c1 = 4, .h1 = 8, .w1 = 8, .k = 4, .f = 3, .stride = 1,
                  .has_bias = true, .activation = Activation::kRelu},
                 {.fuse_activation = true, .cached_writes = true,
                  .unroll_filter = true, .tile_c1 = 2, .tile_w2 = 3,
                  .symbolic = true, .pin_strides = true}}),
    [](const auto& info) { return info.param.label; });

TEST(ConvBuilder, ChannelIoRoundTrip) {
  // conv reading its IFM from a channel and writing OFM to a channel.
  const ConvSpec spec{.c1 = 2, .h1 = 6, .w1 = 6, .k = 3, .f = 3, .stride = 1,
                      .has_bias = true, .activation = Activation::kRelu};
  Rng rng(7);
  Tensor input = Tensor::Random(Shape{1, 2, 6, 6}, rng);
  Tensor weights = Tensor::Random(Shape{3, 2, 3, 3}, rng);
  Tensor bias = Tensor::Random(Shape{3}, rng);
  Tensor expected = cpu::Conv2d(input, weights, bias,
                                {.stride = 1, .activation = Activation::kRelu});

  auto cin = MakeBuffer("cin", {IntImm(1)}, MemScope::kChannel);
  auto cout = MakeBuffer("cout", {IntImm(1)}, MemScope::kChannel);
  auto bk = BuildConv2dKernel(
      spec, {.fuse_activation = true, .cached_writes = true,
             .unroll_filter = true},
      "conv_chan", {.input = cin, .output = cout});
  EXPECT_FALSE(bk.input);
  EXPECT_FALSE(bk.output);

  Runner r(bk);
  r.Bind(bk.weights, weights).Bind(bk.bias, bias);
  for (float v : input.data()) r.env().channel(cin.get()).push_back(v);
  r.Run();

  auto& out_q = r.env().channel(cout.get());
  ASSERT_EQ(out_q.size(), static_cast<std::size_t>(expected.size()));
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(out_q[static_cast<std::size_t>(i)], expected.at(i), 1e-4f)
        << "at " << i;
  }
}

TEST(ConvBuilder, FusedRequiresCachedWrites) {
  EXPECT_THROW((void)BuildConv2dKernel({.c1 = 1, .h1 = 4, .w1 = 4, .k = 1},
                                       {.fuse_activation = true}, "bad"),
               Error);
}

TEST(ConvBuilder, SymbolicKernelReusedAcrossShapes) {
  // One parameterized kernel executes two different layer shapes -- the
  // essence of folded execution (SS5.3).
  const ConvSchedule sched{.fuse_activation = true, .cached_writes = true,
                           .unroll_filter = true, .symbolic = true,
                           .pin_strides = true};
  auto bk = BuildConv2dKernel({.f = 3, .stride = 1, .has_bias = false,
                               .activation = Activation::kRelu},
                              sched, "conv3x3_s1");
  Rng rng(31);
  for (const auto& [c1, hw, k] :
       std::vector<std::tuple<int, int, int>>{{2, 6, 3}, {4, 8, 2}}) {
    Tensor input = Tensor::Random(Shape{1, c1, hw, hw}, rng);
    Tensor weights = Tensor::Random(Shape{k, c1, 3, 3}, rng);
    Tensor expected = cpu::Conv2d(input, weights, Tensor(),
                                  {.activation = Activation::kRelu});
    Tensor in3 = input.Reshaped(Shape{c1, hw, hw});
    Tensor out(Shape{k, hw - 2, hw - 2});
    Runner r(bk);
    r.Bind(bk.input, in3).Bind(bk.weights, weights).Bind(bk.output, out);
    r.BindParam("C1", c1).BindParam("HW", hw).BindParam("K", k);
    r.BindParam("ACT", static_cast<std::int64_t>(Activation::kRelu));
    r.BindStrides(bk.input, Shape{c1, hw, hw})
        .BindStrides(bk.weights, weights.shape())
        .BindStrides(bk.output, out.shape());
    r.Run();
    EXPECT_LT(Tensor::MaxRelDiff(out.Reshaped(expected.shape()), expected,
                                 1e-3f),
              2e-3f);
  }
}

// --- Dense -------------------------------------------------------------------

struct DenseCase {
  std::string label;
  DenseSpec spec;
  DenseSchedule sched;
};

class DenseEquivalence : public ::testing::TestWithParam<DenseCase> {};

TEST_P(DenseEquivalence, MatchesReferenceOp) {
  const auto& [label, spec, sched] = GetParam();
  Rng rng(51);
  Tensor x = Tensor::Random(Shape{1, spec.c1}, rng);
  Tensor w = Tensor::Random(Shape{spec.c2, spec.c1}, rng);
  Tensor bias = spec.has_bias ? Tensor::Random(Shape{spec.c2}, rng) : Tensor();
  Tensor expected = cpu::Dense(x, w, bias, spec.activation);

  auto bk = BuildDenseKernel(spec, sched, "dense_test");
  Tensor x1 = x.Reshaped(Shape{spec.c1});
  Tensor out(Shape{spec.c2});
  Runner r(bk);
  r.Bind(bk.input, x1).Bind(bk.weights, w).Bind(bk.output, out);
  if (bias.defined()) r.Bind(bk.bias, bias);
  r.Run();
  EXPECT_LT(Tensor::MaxRelDiff(out.Reshaped(expected.shape()), expected,
                               1e-3f),
            2e-3f)
      << label;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DenseEquivalence,
    ::testing::Values(
        DenseCase{"naive",
                  {.c1 = 12, .c2 = 5, .has_bias = true,
                   .activation = Activation::kRelu},
                  {}},
        DenseCase{"unrolled",
                  {.c1 = 12, .c2 = 5, .has_bias = true,
                   .activation = Activation::kRelu},
                  {.cached_writes = true, .unroll_k = 4}},
        DenseCase{"cached_input",
                  {.c1 = 16, .c2 = 7, .has_bias = false,
                   .activation = Activation::kNone},
                  {.cached_writes = true, .unroll_k = 8, .input_cache = true}}),
    [](const auto& info) { return info.param.label; });

TEST(DenseBuilder, RejectsNonDividingUnroll) {
  EXPECT_THROW((void)BuildDenseKernel({.c1 = 10, .c2 = 2},
                                      {.cached_writes = true, .unroll_k = 4},
                                      "bad"),
               Error);
}

// --- Pool --------------------------------------------------------------------

TEST(PoolBuilder, NaiveMaxPoolMatchesReference) {
  Rng rng(61);
  Tensor input = Tensor::Random(Shape{1, 3, 8, 8}, rng);
  Tensor expected = cpu::MaxPool2d(input, {.window = 2, .stride = 2});

  auto bk = BuildPoolKernel({.c = 3, .h1 = 8, .w1 = 8, .f = 2, .stride = 2},
                            {}, "pool_naive");
  Tensor in3 = input.Reshaped(Shape{3, 8, 8});
  Tensor out(Shape{3, 4, 4});
  Runner r(bk);
  r.Bind(bk.input, in3).Bind(bk.output, out);
  r.Run();
  EXPECT_EQ(Tensor::MaxAbsDiff(out.Reshaped(expected.shape()), expected), 0.0f);
}

TEST(PoolBuilder, OptimizedAvgPoolMatchesReference) {
  Rng rng(62);
  Tensor input = Tensor::Random(Shape{1, 4, 7, 7}, rng);
  Tensor expected = cpu::AvgPool2d(input, {.window = 7, .stride = 1});

  auto bk = BuildPoolKernel(
      {.c = 4, .h1 = 7, .w1 = 7, .f = 7, .stride = 1, .is_max = false},
      {.optimized = true}, "pool_avg");
  Tensor in3 = input.Reshaped(Shape{4, 7, 7});
  Tensor out(Shape{4, 1, 1});
  Runner r(bk);
  r.Bind(bk.input, in3).Bind(bk.output, out);
  r.Run();
  EXPECT_LT(Tensor::MaxRelDiff(out.Reshaped(expected.shape()), expected),
            1e-5f);
}

TEST(PoolBuilder, ChannelPipelineMatchesReference) {
  Rng rng(63);
  Tensor input = Tensor::Random(Shape{1, 2, 6, 6}, rng);
  Tensor expected = cpu::MaxPool2d(input, {.window = 2, .stride = 2});

  auto cin = MakeBuffer("cin", {IntImm(1)}, MemScope::kChannel);
  auto cout = MakeBuffer("cout", {IntImm(1)}, MemScope::kChannel);
  auto bk = BuildPoolKernel({.c = 2, .h1 = 6, .w1 = 6, .f = 2, .stride = 2},
                            {.optimized = true}, "pool_chan",
                            {.input = cin, .output = cout});
  // Weightless + channel I/O means the planner may declare it autorun.
  EXPECT_TRUE(bk.kernel.buffer_args.empty());

  Runner r(bk);
  for (float v : input.data()) r.env().channel(cin.get()).push_back(v);
  r.Run();
  auto& q = r.env().channel(cout.get());
  ASSERT_EQ(q.size(), static_cast<std::size_t>(expected.size()));
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(q[static_cast<std::size_t>(i)], expected.at(i));
  }
}

// --- Softmax -----------------------------------------------------------------

TEST(SoftmaxBuilder, NaiveAndOptimizedMatchReference) {
  Rng rng(71);
  Tensor x = Tensor::Random(Shape{10}, rng, -4.0f, 4.0f);
  Tensor expected = cpu::Softmax(x);

  for (bool optimized : {false, true}) {
    auto bk = BuildSoftmaxKernel({.n = 10}, optimized, "softmax_test");
    Tensor out(Shape{10});
    Runner r(bk);
    r.Bind(bk.input, x).Bind(bk.output, out);
    r.Run();
    EXPECT_LT(Tensor::MaxRelDiff(out, expected), 1e-5f)
        << "optimized=" << optimized;
  }
}

TEST(SoftmaxBuilder, NaiveUsesGlobalWorkspacesOptimizedDoesNot) {
  auto naive = BuildSoftmaxKernel({.n = 10}, false, "sm_naive");
  auto opt = BuildSoftmaxKernel({.n = 10}, true, "sm_opt");
  EXPECT_EQ(naive.workspaces.size(), 3u);
  EXPECT_TRUE(opt.workspaces.empty());
  EXPECT_EQ(opt.kernel.local_buffers.size(), 3u);
}

// --- Pad ---------------------------------------------------------------------

TEST(PadBuilder, MatchesReference) {
  Rng rng(81);
  Tensor input = Tensor::Random(Shape{1, 3, 5, 5}, rng);
  Tensor expected = cpu::Pad2d(input, 2);

  auto bk = BuildPadKernel({.c = 3, .h1 = 5, .w1 = 5, .pad = 2}, "pad_test");
  Tensor in3 = input.Reshaped(Shape{3, 5, 5});
  Tensor out(Shape{3, 9, 9});
  Runner r(bk);
  r.Bind(bk.input, in3).Bind(bk.output, out);
  r.Run();
  EXPECT_EQ(Tensor::MaxAbsDiff(out.Reshaped(expected.shape()), expected), 0.0f);
}

TEST(PadBuilder, SymbolicMatchesReference) {
  Rng rng(82);
  auto bk = BuildPadKernel({.pad = 1, .symbolic = true}, "pad_sym");
  for (const auto& [c, hw] : std::vector<std::pair<int, int>>{{2, 4}, {3, 6}}) {
    Tensor input = Tensor::Random(Shape{1, c, hw, hw}, rng);
    Tensor expected = cpu::Pad2d(input, 1);
    Tensor in3 = input.Reshaped(Shape{c, hw, hw});
    Tensor out(Shape{c, hw + 2, hw + 2});
    Runner r(bk);
    r.Bind(bk.input, in3).Bind(bk.output, out);
    r.BindParam("C1", c).BindParam("HW", hw);
    r.Run();
    EXPECT_EQ(Tensor::MaxAbsDiff(out.Reshaped(expected.shape()), expected),
              0.0f);
  }
}

// --- Add / Copy --------------------------------------------------------------

TEST(AddBuilder, ResidualAddWithRelu) {
  Rng rng(91);
  Tensor a = Tensor::Random(Shape{24}, rng);
  Tensor b = Tensor::Random(Shape{24}, rng);
  Tensor expected = cpu::Add(a, b, Activation::kRelu);

  for (std::int64_t unroll : {1, 8}) {
    auto bk = BuildAddKernel({.n = 24, .activation = Activation::kRelu},
                             unroll, "add_test");
    Tensor out(Shape{24});
    Runner r(bk);
    r.Bind(bk.input, a).Bind(bk.input2, b).Bind(bk.output, out);
    r.Run();
    EXPECT_EQ(Tensor::MaxAbsDiff(out, expected), 0.0f) << "unroll=" << unroll;
  }
}

TEST(AddBuilder, SymbolicHandlesMultipleSizes) {
  Rng rng(92);
  auto bk = BuildAddKernel({.activation = Activation::kRelu, .symbolic = true},
                           8, "add_sym");
  for (std::int64_t n : {16, 64}) {
    Tensor a = Tensor::Random(Shape{n}, rng);
    Tensor b = Tensor::Random(Shape{n}, rng);
    Tensor expected = cpu::Add(a, b, Activation::kRelu);
    Tensor out(Shape{n});
    Runner r(bk);
    r.Bind(bk.input, a).Bind(bk.input2, b).Bind(bk.output, out);
    r.BindParam("N", n);
    r.Run();
    EXPECT_EQ(Tensor::MaxAbsDiff(out, expected), 0.0f) << "n=" << n;
  }
}

TEST(CopyBuilder, GlobalToGlobal) {
  Rng rng(93);
  Tensor a = Tensor::Random(Shape{32}, rng);
  auto bk = BuildCopyKernel(32, "copy_test");
  Tensor out(Shape{32});
  Runner r(bk);
  r.Bind(bk.input, a).Bind(bk.output, out);
  r.Run();
  EXPECT_EQ(Tensor::MaxAbsDiff(out, a), 0.0f);
}

TEST(CopyBuilder, ChannelToChannelIsArgFree) {
  auto cin = MakeBuffer("cin", {IntImm(1)}, MemScope::kChannel);
  auto cout = MakeBuffer("cout", {IntImm(1)}, MemScope::kChannel);
  auto bk = BuildCopyKernel(8, "copy_chan", {.input = cin, .output = cout});
  EXPECT_TRUE(bk.kernel.buffer_args.empty());
  Runner r(bk);
  for (int i = 0; i < 8; ++i)
    r.env().channel(cin.get()).push_back(static_cast<float>(i));
  r.Run();
  auto& q = r.env().channel(cout.get());
  ASSERT_EQ(q.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(q[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace clflow::ir
