// Tests for the graph IR: shape inference, fusion, cost accounting,
// execution.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace clflow::graph {
namespace {

Graph TinyConvNet(Rng& rng) {
  Graph g;
  g.set_name("tiny");
  NodeId x = g.AddInput(Shape{1, 2, 8, 8});
  x = g.AddConv2d(x, Tensor::HeNormal(Shape{4, 2, 3, 3}, rng, 18),
                  Tensor::Random(Shape{4}, rng), 1, "c1");
  x = g.AddActivation(x, Activation::kRelu, "c1_relu");
  x = g.AddMaxPool(x, 2, 2, "p1");
  x = g.AddFlatten(x, "flat");
  x = g.AddDense(x, Tensor::HeNormal(Shape{5, 36}, rng, 36),
                 Tensor::Random(Shape{5}, rng), "fc");
  g.AddSoftmax(x, "sm");
  return g;
}

TEST(Graph, ShapeInference) {
  Rng rng(1);
  Graph g = TinyConvNet(rng);
  EXPECT_EQ(g.node(1).output_shape, (Shape{1, 4, 6, 6}));  // conv
  EXPECT_EQ(g.node(3).output_shape, (Shape{1, 4, 3, 3}));  // pool
  EXPECT_EQ(g.node(4).output_shape, (Shape{1, 36}));       // flatten
  EXPECT_EQ(g.node(g.output_id()).output_shape, (Shape{1, 5}));
}

TEST(Graph, RejectsBadShapes) {
  Rng rng(2);
  Graph g;
  NodeId x = g.AddInput(Shape{1, 3, 8, 8});
  EXPECT_THROW(
      (void)g.AddConv2d(x, Tensor::HeNormal(Shape{4, 2, 3, 3}, rng, 18),
                        Tensor(), 1, "bad"),
      ShapeError);
  NodeId a = g.AddConv2d(x, Tensor::HeNormal(Shape{4, 3, 3, 3}, rng, 27),
                         Tensor(), 1, "ok");
  EXPECT_THROW((void)g.AddResidual(a, x, "bad_add"), ShapeError);
}

TEST(Graph, PadChangesSpatialOnly) {
  Graph g;
  NodeId x = g.AddInput(Shape{1, 3, 10, 10});
  NodeId p = g.AddPad(x, 2, "pad");
  EXPECT_EQ(g.node(p).output_shape, (Shape{1, 3, 14, 14}));
  EXPECT_THROW((void)g.AddPad(x, 0, "bad"), Error);
}

TEST(FuseOperators, FoldsActivationIntoConv) {
  Rng rng(3);
  Graph g = TinyConvNet(rng);
  Graph fused = FuseOperators(g);
  // The standalone relu disappears...
  int act_nodes = 0;
  for (const auto& n : fused.nodes()) {
    if (n.kind == OpKind::kActivation) ++act_nodes;
  }
  EXPECT_EQ(act_nodes, 0);
  EXPECT_EQ(fused.nodes().size(), g.nodes().size() - 1);
  // ...and the conv carries it.
  bool conv_has_act = false;
  for (const auto& n : fused.nodes()) {
    if (n.kind == OpKind::kConv2d && n.activation == Activation::kRelu) {
      conv_has_act = true;
    }
  }
  EXPECT_TRUE(conv_has_act);
}

TEST(FuseOperators, PreservesSemantics) {
  Rng rng(4);
  Graph g = TinyConvNet(rng);
  Graph fused = FuseOperators(g);
  Rng data_rng(5);
  Tensor input = Tensor::Random(Shape{1, 2, 8, 8}, data_rng);
  Tensor a = Execute(g, input);
  Tensor b = Execute(fused, input);
  EXPECT_LT(Tensor::MaxRelDiff(a, b), 1e-6f);
}

TEST(FuseOperators, DoesNotFuseSharedProducer) {
  // conv feeds both an activation and a residual add: must not fuse.
  Rng rng(6);
  Graph g;
  NodeId x = g.AddInput(Shape{1, 2, 4, 4});
  NodeId c = g.AddConv2d(x, Tensor::HeNormal(Shape{2, 2, 1, 1}, rng, 2),
                         Tensor(), 1, "c");
  NodeId r = g.AddActivation(c, Activation::kRelu, "r");
  g.AddResidual(c, r, "res");
  Graph fused = FuseOperators(g);
  int act_nodes = 0;
  for (const auto& n : fused.nodes()) {
    if (n.kind == OpKind::kActivation) ++act_nodes;
  }
  EXPECT_EQ(act_nodes, 1);  // kept
}

TEST(GraphCost, CountsFlopsAsTwiceMacs) {
  Rng rng(7);
  Graph g;
  NodeId x = g.AddInput(Shape{1, 2, 6, 6});
  g.AddConv2d(x, Tensor::HeNormal(Shape{3, 2, 3, 3}, rng, 18), Tensor(), 1,
              "c");
  const OpCost cost = GraphCost(g);
  // out 3x4x4, macs = 3*4*4*2*9 = 864 -> 1728 flops; params = 54.
  EXPECT_DOUBLE_EQ(cost.flops, 1728.0);
  EXPECT_EQ(cost.params, 54);
}

TEST(Execute, EndToEndTinyNet) {
  Rng rng(8);
  Graph g = TinyConvNet(rng);
  Rng data_rng(9);
  Tensor input = Tensor::Random(Shape{1, 2, 8, 8}, data_rng);
  std::unordered_map<NodeId, Tensor> acts;
  Tensor out = Execute(g, input, /*num_threads=*/2, &acts);
  ASSERT_EQ(out.shape(), (Shape{1, 5}));
  float sum = 0;
  for (float v : out.data()) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-5f);          // softmax output
  EXPECT_EQ(acts.size(), g.nodes().size());  // every node recorded
}

TEST(Execute, RejectsWrongInputShape) {
  Rng rng(10);
  Graph g = TinyConvNet(rng);
  EXPECT_THROW((void)Execute(g, Tensor(Shape{1, 2, 9, 9})), Error);
}

TEST(Graph, ConsumerMap) {
  Rng rng(11);
  Graph g;
  NodeId x = g.AddInput(Shape{1, 2, 4, 4});
  NodeId c = g.AddConv2d(x, Tensor::HeNormal(Shape{2, 2, 1, 1}, rng, 2),
                         Tensor(), 1, "c");
  g.AddResidual(c, x, "res");
  const auto consumers = g.ConsumerMap();
  EXPECT_EQ(consumers[0].size(), 2u);  // input feeds conv and add
  EXPECT_EQ(consumers[1].size(), 1u);
}

}  // namespace
}  // namespace clflow::graph
