// Tests for the telemetry layer: request-scoped trace-context propagation
// (Deployment::Run -> ocl::Runtime -> ProfiledEvent -> Chrome-trace flow
// arrows), the flight-recorder ring and its dump-on-fault postmortem, and
// the SLO monitor's window/burn-rate/diagnostic semantics (CLF701-703).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/codes.hpp"
#include "analysis/diag.hpp"
#include "common/error.hpp"
#include "core/deployment.hpp"
#include "nets/nets.hpp"
#include "obs/json.hpp"
#include "ocl/trace.hpp"
#include "resilience/fault.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/slo.hpp"

namespace clflow {
namespace {

using telemetry::FlightEvent;
using telemetry::FlightRecorder;
using telemetry::RequestSummary;
using telemetry::SloMonitor;
using telemetry::SloSpec;
using telemetry::TraceContext;

core::DeployOptions LenetPipelinedOptions() {
  core::DeployOptions opts;
  opts.mode = core::ExecutionMode::kPipelined;
  opts.recipe = core::PipelineAutorun();
  opts.recipe.concurrent_execution = true;
  opts.board = fpga::Stratix10SX();
  return opts;
}

core::Deployment CompileLenet(const core::DeployOptions& opts) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  auto d = core::Deployment::Compile(net, opts);
  EXPECT_TRUE(d.ok());
  return d;
}

Tensor LenetImage() {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Rng img_rng(21);
  return Tensor::Random(in_shape, img_rng, 0.0f, 1.0f);
}

// --- trace-context propagation ---------------------------------------------

TEST(TraceContext, RunStampsEveryEventWithItsRequestId) {
  auto d = CompileLenet(LenetPipelinedOptions());
  const Tensor image = LenetImage();

  const auto r1 = d.Run(image, /*functional=*/false);
  const auto r2 = d.Run(image, /*functional=*/false);
  EXPECT_EQ(r1.trace_id, 1u);
  EXPECT_EQ(r2.trace_id, 2u);

  std::set<std::uint64_t> trace_ids;
  std::set<std::uint64_t> span_ids;
  for (const auto& ev : d.runtime().events()) {
    trace_ids.insert(ev.trace_id);
    EXPECT_NE(ev.span_id, 0u);  // every recorded event gets a span id
    EXPECT_TRUE(span_ids.insert(ev.span_id).second)
        << "span ids must be unique across the whole event stream";
    EXPECT_EQ(ev.parent_span_id, ev.trace_id)
        << "request root spans use the trace id as parent";
  }
  EXPECT_EQ(trace_ids, (std::set<std::uint64_t>{1u, 2u}));
}

TEST(TraceContext, ChromeTraceEmitsFlowArrowsPerRequest) {
  auto d = CompileLenet(LenetPipelinedOptions());
  const Tensor image = LenetImage();
  (void)d.Run(image, /*functional=*/false);
  (void)d.Run(image, /*functional=*/false);

  const std::string trace = ocl::ExportChromeTrace(d.runtime().events());
  const auto doc = obs::json::Parse(trace);
  ASSERT_TRUE(doc.has_value());
  const auto* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Each request chains exactly one "s" (start) and one "f" (finish,
  // binding to the enclosing slice) with its trace id as the flow id.
  std::map<double, int> starts, finishes, middles;
  for (const auto& ev : events->array) {
    const auto* ph = ev.Find("ph");
    if (ph == nullptr || ph->kind != obs::json::Value::Kind::kString) continue;
    const auto* id = ev.Find("id");
    if (ph->str == "s") starts[id->number]++;
    if (ph->str == "t") middles[id->number]++;
    if (ph->str == "f") {
      finishes[id->number]++;
      const auto* bp = ev.Find("bp");
      ASSERT_NE(bp, nullptr);
      EXPECT_EQ(bp->str, "e");
    }
  }
  EXPECT_EQ(starts[1], 1);
  EXPECT_EQ(starts[2], 1);
  EXPECT_EQ(finishes[1], 1);
  EXPECT_EQ(finishes[2], 1);
  EXPECT_GT(middles[1], 0);  // lenet has > 2 commands per request
}

TEST(TraceContext, TraceIdsAreBitStableAcrossFreshDeployments) {
  // Two independent compiles of the same network must produce the exact
  // same runtime export: ids come from request/span counters, not from
  // wall clock, addresses, or thread scheduling.
  const Tensor image = LenetImage();
  auto d1 = CompileLenet(LenetPipelinedOptions());
  auto d2 = CompileLenet(LenetPipelinedOptions());
  for (int i = 0; i < 3; ++i) {
    (void)d1.Run(image, /*functional=*/false);
    (void)d2.Run(image, /*functional=*/false);
  }
  EXPECT_EQ(ocl::ExportChromeTrace(d1.runtime().events()),
            ocl::ExportChromeTrace(d2.runtime().events()));
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsOldestAndCountsDrops) {
  FlightRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Note("command", "ev" + std::to_string(i), TraceContext{1, 1});
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_TRUE(rec.overflowed());
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().label, "ev6");  // oldest surviving
  EXPECT_EQ(snap.back().label, "ev9");
  EXPECT_EQ(snap.front().seq, 6u);  // seq keeps counting across evictions
}

TEST(FlightRecorderTest, ToJsonRoundTripsThroughParser) {
  FlightRecorder rec(8);
  FlightEvent ev;
  ev.kind = "command";
  ev.label = "k_conv1 \"quoted\"";
  ev.trace_id = 3;
  ev.span_id = 7;
  ev.parent_span_id = 3;
  ev.t_us = 12.5;
  ev.dur_us = 3.25;
  ev.queue = 2;
  ev.detail = "line\nbreak";
  rec.Record(ev);

  const auto doc = obs::json::Parse(rec.ToJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->Find("capacity")->number, 8.0);
  EXPECT_DOUBLE_EQ(doc->Find("total_recorded")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->Find("dropped")->number, 0.0);
  const auto* events = doc->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const auto& e = events->array[0];
  EXPECT_EQ(e.Find("label")->str, "k_conv1 \"quoted\"");
  EXPECT_EQ(e.Find("detail")->str, "line\nbreak");
  EXPECT_DOUBLE_EQ(e.Find("trace_id")->number, 3.0);
  EXPECT_DOUBLE_EQ(e.Find("span_id")->number, 7.0);
  EXPECT_DOUBLE_EQ(e.Find("queue")->number, 2.0);
}

TEST(FlightRecorderTest, DumpOnFaultCarriesTheFailingRequestsTraceId) {
  const std::string path = testing::TempDir() + "clflow_flightrec_test.json";
  std::remove(path.c_str());

  core::DeployOptions opts = LenetPipelinedOptions();
  opts.flightrec_path = path;
  auto d = CompileLenet(opts);

  resilience::FaultPlan plan;
  plan.seed = 17;
  plan.specs.push_back(resilience::ParseFaultSpec("hang:k_conv1"));
  d.runtime().set_fault_injector(
      std::make_shared<resilience::FaultInjector>(plan));

  const Tensor image = LenetImage();
  EXPECT_THROW((void)d.Run(image, /*functional=*/false), RuntimeFaultError);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "fault escape must dump " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::json::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());

  bool saw_request = false, saw_fault = false;
  for (const auto& ev : doc->Find("events")->array) {
    const std::string kind = ev.Find("kind")->str;
    if (kind == "request") {
      saw_request = true;
      EXPECT_DOUBLE_EQ(ev.Find("trace_id")->number, 1.0);
    }
    if (kind == "fault") {
      saw_fault = true;
      EXPECT_DOUBLE_EQ(ev.Find("trace_id")->number, 1.0)
          << "the fault must be attributed to the failing request";
      EXPECT_NE(ev.Find("label")->str.find("CLF502"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_fault);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, OverflowAtDumpTimeReportsClf703) {
  const std::string path = testing::TempDir() + "clflow_flightrec_703.json";
  std::remove(path.c_str());

  core::DeployOptions opts = LenetPipelinedOptions();
  opts.flightrec_path = path;
  opts.flightrec_capacity = 2;  // force the ring to wrap immediately
  auto d = CompileLenet(opts);

  resilience::FaultPlan plan;
  plan.seed = 17;
  plan.specs.push_back(resilience::ParseFaultSpec("hang:k_conv1"));
  d.runtime().set_fault_injector(
      std::make_shared<resilience::FaultInjector>(plan));

  const Tensor image = LenetImage();
  EXPECT_THROW((void)d.Run(image, /*functional=*/false), RuntimeFaultError);

  bool found = false;
  for (const auto& diag : d.diagnostics().diagnostics()) {
    if (diag.code == "CLF703") found = true;
  }
  EXPECT_TRUE(found) << "a wrapped ring at dump time must surface CLF703";

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::json::Parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_GT(doc->Find("dropped")->number, 0.0);
  std::remove(path.c_str());
}

TEST(SequencedDumpPath, SuffixesEverythingAfterTheFirst) {
  using telemetry::SequencedDumpPath;
  EXPECT_EQ(SequencedDumpPath("x_flightrec.json", 0), "x_flightrec.json");
  EXPECT_EQ(SequencedDumpPath("x_flightrec.json", 1), "x_flightrec.1.json");
  EXPECT_EQ(SequencedDumpPath("x_flightrec.json", 12),
            "x_flightrec.12.json");
  // No extension: the suffix appends.
  EXPECT_EQ(SequencedDumpPath("dump", 2), "dump.2");
  // A dot in a directory component is not an extension.
  EXPECT_EQ(SequencedDumpPath("out.d/dump", 3), "out.d/dump.3");
  EXPECT_EQ(SequencedDumpPath("out.d/dump.json", 3), "out.d/dump.3.json");
}

TEST(FlightRecorderTest, RepeatedFaultsNeverOverwriteAPostmortem) {
  const std::string first =
      testing::TempDir() + "clflow_flightrec_seq.json";
  const std::string second =
      testing::TempDir() + "clflow_flightrec_seq.1.json";
  std::remove(first.c_str());
  std::remove(second.c_str());

  core::DeployOptions opts = LenetPipelinedOptions();
  opts.flightrec_path = first;
  auto d = CompileLenet(opts);

  // Two hang faults on consecutive batches: each escaping fault dumps a
  // postmortem, and the second must not clobber the first.
  resilience::FaultPlan plan;
  plan.seed = 17;
  plan.specs.push_back(resilience::ParseFaultSpec("hang:k_conv1:0"));
  plan.specs.push_back(resilience::ParseFaultSpec("hang:k_conv1:1"));
  d.runtime().set_fault_injector(
      std::make_shared<resilience::FaultInjector>(plan));

  const Tensor image = LenetImage();
  EXPECT_THROW((void)d.Run(image, /*functional=*/false), RuntimeFaultError);
  d.runtime().AbortBatch();  // clear the poisoned batch state
  EXPECT_THROW((void)d.Run(image, /*functional=*/false), RuntimeFaultError);

  for (const std::string& path : {first, second}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(obs::json::Parse(buf.str()).has_value()) << path;
  }
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST(FlightRecorderTest, AttachingARecorderNeverChangesSpanNumbering) {
  // RecordFault does not consume span ids and the recorder is a pure
  // mirror, so the profiled event stream (ids included) is identical
  // with and without the postmortem machinery armed.
  const Tensor image = LenetImage();

  auto with = CompileLenet([] {
    core::DeployOptions o = LenetPipelinedOptions();
    o.flightrec_capacity = 4;
    return o;
  }());
  auto without = CompileLenet(LenetPipelinedOptions());
  (void)with.Run(image, /*functional=*/false);
  (void)without.Run(image, /*functional=*/false);
  EXPECT_EQ(ocl::ExportChromeTrace(with.runtime().events()),
            ocl::ExportChromeTrace(without.runtime().events()));
}

// --- SLO monitor -------------------------------------------------------------

RequestSummary OkRequest(std::uint64_t id, double latency_us) {
  RequestSummary r;
  r.trace_id = id;
  r.latency_us = latency_us;
  r.ok = true;
  return r;
}

TEST(Slo, ViolationRateAndBurnRateFollowTheWindow) {
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.objective = 0.9;  // 10% error budget
  spec.window = 10;
  SloMonitor mon(spec);

  for (int i = 0; i < 8; ++i) mon.ObserveRequest(OkRequest(1, 50.0));
  EXPECT_DOUBLE_EQ(mon.violation_rate(), 0.0);
  EXPECT_DOUBLE_EQ(mon.goodput(), 1.0);

  mon.ObserveRequest(OkRequest(2, 150.0));  // late
  RequestSummary failed = OkRequest(3, 50.0);
  failed.ok = false;
  mon.ObserveRequest(failed);  // faulted counts as violation too

  EXPECT_DOUBLE_EQ(mon.violation_rate(), 0.2);
  EXPECT_DOUBLE_EQ(mon.burn_rate(), 2.0);  // 20% violations vs 10% budget
  EXPECT_DOUBLE_EQ(mon.goodput(), 0.8);
  EXPECT_EQ(mon.total_requests(), 10u);
  EXPECT_EQ(mon.total_violations(), 2u);

  // Violations age out of the sliding window.
  for (int i = 0; i < 10; ++i) mon.ObserveRequest(OkRequest(4, 50.0));
  EXPECT_DOUBLE_EQ(mon.violation_rate(), 0.0);
  EXPECT_EQ(mon.total_violations(), 2u);  // totals never decay
}

TEST(Slo, Clf701FiresOnceOnEachBurnCrossing) {
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.objective = 0.9;
  spec.window = 4;
  spec.burn_threshold = 1.0;
  SloMonitor mon(spec);
  analysis::DiagnosticEngine diags;

  auto count701 = [&diags] {
    int n = 0;
    for (const auto& d : diags.diagnostics()) n += d.code == "CLF701";
    return n;
  };

  mon.ObserveRequest(OkRequest(1, 50.0), &diags);
  EXPECT_EQ(count701(), 0);
  mon.ObserveRequest(OkRequest(2, 500.0), &diags);  // burn crosses
  EXPECT_EQ(count701(), 1);
  mon.ObserveRequest(OkRequest(3, 500.0), &diags);  // still burning: no spam
  EXPECT_EQ(count701(), 1);
  for (int i = 0; i < 4; ++i) mon.ObserveRequest(OkRequest(4, 50.0), &diags);
  mon.ObserveRequest(OkRequest(5, 500.0), &diags);  // second crossing
  EXPECT_EQ(count701(), 2);
}

TEST(Slo, Clf702FiresOnDominantSingleStallNotOnPipelineFill) {
  SloSpec spec;
  spec.latency_objective_us = 0.0;  // latency not under test here
  SloMonitor mon(spec);
  analysis::DiagnosticEngine diags;

  // Healthy pipelined shape: lots of *summed* stall, no dominant one.
  RequestSummary pipelined = OkRequest(1, 100.0);
  pipelined.stall_us = 300.0;
  pipelined.max_stall_us = 80.0;
  mon.ObserveRequest(pipelined, &diags);
  EXPECT_TRUE(diags.diagnostics().empty());

  RequestSummary starved = OkRequest(2, 100.0);
  starved.stall_us = 95.0;
  starved.max_stall_us = 95.0;
  starved.queue = 3;
  mon.ObserveRequest(starved, &diags);
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].code, "CLF702");
  EXPECT_NE(diags.diagnostics()[0].message.find("queue 3"),
            std::string::npos);
}

TEST(Slo, Clf701FiresUnderInjectedFmaxDroop) {
  auto d = CompileLenet(LenetPipelinedOptions());
  const Tensor image = LenetImage();
  const auto healthy = d.Run(image, /*functional=*/false);

  SloSpec spec;
  spec.latency_objective_us = healthy.latency.us() * 1.05;
  spec.window = 8;
  spec.objective = 0.99;
  SloMonitor mon(spec);
  analysis::DiagnosticEngine diags;

  // Thermal throttling at half clock: every request now misses the
  // budget anchored to the healthy latency.
  resilience::FaultPlan plan;
  plan.seed = 17;
  plan.specs.push_back(resilience::ParseFaultSpec("fmax-droop:0.5"));
  d.runtime().set_fault_injector(
      std::make_shared<resilience::FaultInjector>(plan));

  auto& rt = d.runtime();
  for (int i = 0; i < 8; ++i) {
    const auto r = d.Run(image, /*functional=*/false);
    EXPECT_GT(r.latency.us(), spec.latency_objective_us);
    mon.ObserveRequest(ocl::SummarizeRequest(rt.events(), r.trace_id),
                       &diags);
  }
  EXPECT_GT(mon.burn_rate(), 1.0);
  bool found = false;
  for (const auto& diag : diags.diagnostics()) {
    if (diag.code == "CLF701") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Slo, ExportMetricsWritesGaugesAndWindowedHistogram) {
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.window = 4;
  SloMonitor mon(spec);
  for (int i = 1; i <= 6; ++i) {
    mon.ObserveRequest(OkRequest(static_cast<std::uint64_t>(i), i * 10.0));
  }

  obs::Registry reg;
  mon.ExportMetrics(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("telemetry.slo.objective_us").value(), 100.0);
  EXPECT_DOUBLE_EQ(reg.gauge("telemetry.slo.requests").value(), 6.0);
  EXPECT_DOUBLE_EQ(reg.gauge("telemetry.slo.violations").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("telemetry.slo.goodput").value(), 1.0);
  // Only the window's last 4 samples (30..60) are exported.
  const auto snap = reg.histogram("telemetry.slo.latency_us").snapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_DOUBLE_EQ(snap.min, 30.0);
  EXPECT_DOUBLE_EQ(snap.max, 60.0);
}

TEST(Slo, Clf704FastBurnFiresBeforeSlowBurn) {
  // Two-horizon alerting: a short violation burst saturates the fast
  // horizon (CLF704) while the slow 64-window burn is still far under
  // its threshold; only a sustained violation rate trips CLF701.
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.objective = 0.9;  // 10% error budget
  spec.burn_threshold = 1.0;
  spec.fast_burn_threshold = 4.0;
  spec.window_resolution = SimTime::Ms(1.0);
  spec.slow_windows = 64;
  spec.fast_windows = 4;
  SloMonitor mon(spec);
  analysis::DiagnosticEngine diags;
  auto count = [&diags](const char* code) {
    int n = 0;
    for (const auto& d : diags.diagnostics()) n += d.code == code;
    return n;
  };

  // One good request per window for 60 windows: both burns at zero.
  for (int w = 0; w < 60; ++w) {
    mon.ObserveRequestAt(OkRequest(1, 50.0),
                         SimTime::Ms(static_cast<double>(w) + 0.5), &diags);
  }
  EXPECT_EQ(count("CLF704"), 0);
  EXPECT_EQ(count("CLF701"), 0);

  // A 4-violation burst in windows 60-61. Fast horizon [58, 61]: 4 of 6
  // requests violate -> burn 6.7x budget >= 4x. Slow horizon: 4 of 64 ->
  // burn 0.6x, still quiet.
  for (int i = 0; i < 4; ++i) {
    mon.ObserveRequestAt(OkRequest(2, 500.0),
                         SimTime::Ms(60.0 + 0.4 * i), &diags);
  }
  EXPECT_EQ(count("CLF704"), 1);
  EXPECT_EQ(count("CLF701"), 0);
  EXPECT_GE(mon.fast_burn_rate(), spec.fast_burn_threshold);
  EXPECT_LT(mon.slow_burn_rate(), spec.burn_threshold);

  // Sustained violations eventually trip the slow horizon too (needs
  // >10% of the 64-window request mix).
  for (int i = 0; i < 8; ++i) {
    mon.ObserveRequestAt(OkRequest(3, 500.0),
                         SimTime::Ms(62.0 + static_cast<double>(i)), &diags);
  }
  EXPECT_GE(count("CLF701"), 1);
  EXPECT_GE(mon.slow_burn_rate(), spec.burn_threshold);
}

TEST(Slo, FastBurnDecaysWhenViolationsStop) {
  // An old burst must not pin the fast burn high forever: both horizons
  // are anchored to the *request* series head, so new quiet windows push
  // the burst out of the fast horizon.
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.objective = 0.9;
  spec.window_resolution = SimTime::Ms(1.0);
  spec.slow_windows = 32;
  spec.fast_windows = 4;
  SloMonitor mon(spec);

  for (int i = 0; i < 4; ++i) {
    mon.ObserveRequestAt(OkRequest(1, 500.0), SimTime::Ms(0.5), nullptr);
  }
  EXPECT_GT(mon.fast_burn_rate(), 1.0);
  for (int w = 1; w <= 8; ++w) {
    mon.ObserveRequestAt(OkRequest(2, 50.0),
                         SimTime::Ms(static_cast<double>(w) + 0.5), nullptr);
  }
  EXPECT_DOUBLE_EQ(mon.fast_burn_rate(), 0.0);
  EXPECT_GT(mon.slow_burn_rate(), 0.0);  // burst still in the slow horizon
}

TEST(Slo, ObserveRequestAtFeedsWindowedSeries) {
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.window_resolution = SimTime::Ms(1.0);
  spec.slow_windows = 16;
  SloMonitor mon(spec);
  mon.ObserveRequestAt(OkRequest(1, 50.0), SimTime::Ms(0.5), nullptr);
  mon.ObserveRequestAt(OkRequest(2, 150.0), SimTime::Ms(1.5), nullptr);
  mon.ObserveRequestAt(OkRequest(3, 150.0), SimTime::Ms(1.7), nullptr);

  EXPECT_DOUBLE_EQ(mon.request_series().Total(), 3.0);
  EXPECT_DOUBLE_EQ(mon.violation_series().Total(), 2.0);
  const auto windows = mon.request_series().Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].value, 1.0);
  EXPECT_DOUBLE_EQ(windows[1].value, 2.0);

  // The timestamped path also feeds the count-window state the export
  // and text paths read.
  EXPECT_EQ(mon.total_requests(), 3u);
  EXPECT_EQ(mon.total_violations(), 2u);
  obs::Registry reg;
  mon.ExportMetrics(reg);
  EXPECT_GT(reg.gauge("telemetry.slo.fast_burn_rate").value(), 0.0);
  EXPECT_GT(reg.gauge("telemetry.slo.slow_burn_rate").value(), 0.0);
}

TEST(Slo, ToJsonParsesAndMatchesState) {
  SloSpec spec;
  spec.latency_objective_us = 100.0;
  spec.window = 8;
  SloMonitor mon(spec);
  mon.ObserveRequest(OkRequest(1, 50.0));
  mon.ObserveRequest(OkRequest(2, 150.0));

  const auto doc = obs::json::Parse(mon.ToJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->Find("requests")->number, 2.0);
  EXPECT_DOUBLE_EQ(doc->Find("violations")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->Find("goodput")->number, 0.5);
  EXPECT_DOUBLE_EQ(doc->Find("latency_us")->Find("count")->number, 2.0);
}

}  // namespace
}  // namespace clflow
