// Unit tests for the tensor substrate (shape algebra + dense tensors).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace clflow {
namespace {

TEST(Shape, BasicProperties) {
  const Shape s{1, 64, 56, 56};
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s.NumElements(), 1 * 64 * 56 * 56);
  EXPECT_EQ(s[1], 64);
  EXPECT_EQ(s.channels(), 64);
  EXPECT_EQ(s.height(), 56);
  EXPECT_EQ(s.ToString(), "[1, 64, 56, 56]");
}

TEST(Shape, Strides) {
  const Shape s{2, 3, 4};
  const auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, FlattenedPreservesCount) {
  const Shape s{4, 5, 6};
  EXPECT_EQ(s.Flattened().rank(), 1);
  EXPECT_EQ(s.Flattened().NumElements(), s.NumElements());
}

TEST(Shape, RejectsNonPositiveExtents) {
  EXPECT_THROW(Shape({1, 0, 3}), Error);
  EXPECT_THROW(Shape({-2}), Error);
}

TEST(Shape, EqualityIsStructural) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
}

TEST(Shape, NchwAccessorRequiresRank4) {
  const Shape s{10};
  EXPECT_THROW((void)s.channels(), Error);
}

TEST(ConvOutDim, MatchesPaperFormula) {
  // H2 = (H1 - F + 2P)/S + 1, Section 2.1.2.
  EXPECT_EQ(ConvOutDim(28, 3, 1, 0), 26);   // LeNet conv1
  EXPECT_EQ(ConvOutDim(26, 2, 2, 0), 13);   // LeNet pool1
  EXPECT_EQ(ConvOutDim(226, 3, 2, 0), 112); // MobileNet conv1 (pre-padded)
  EXPECT_EQ(ConvOutDim(224, 7, 2, 3), 112); // ResNet conv1
  EXPECT_EQ(ConvOutDim(7, 7, 1, 0), 1);     // global average pool
}

TEST(ConvOutDim, RejectsImpossibleWindows) {
  EXPECT_THROW((void)ConvOutDim(2, 5, 1, 0), ShapeError);
  EXPECT_THROW((void)ConvOutDim(8, 3, 0, 0), ShapeError);
  EXPECT_THROW((void)ConvOutDim(8, 0, 1, 0), ShapeError);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.size_bytes(), 24);
}

TEST(Tensor, FromDataRoundTrip) {
  auto t = Tensor::FromData(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(3), 4.0f);
  EXPECT_THROW(Tensor::FromData(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, At4UsesNchwLayout) {
  auto t = Tensor::Iota(Shape{1, 2, 3, 4});
  EXPECT_EQ(t.at4(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(t.at4(0, 0, 1, 0), 4.0f);
  EXPECT_EQ(t.at4(0, 1, 0, 0), 12.0f);
  EXPECT_EQ(t.at4(0, 1, 2, 3), 23.0f);
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  auto t = Tensor::Iota(Shape{4});
  Tensor shared = t;
  Tensor deep = t.Clone();
  t.at(0) = 42.0f;
  EXPECT_EQ(shared.at(0), 42.0f);
  EXPECT_EQ(deep.at(0), 0.0f);
}

TEST(Tensor, ReshapedSharesStorage) {
  auto t = Tensor::Iota(Shape{2, 6});
  auto r = t.Reshaped(Shape{3, 4});
  t.at(5) = -1.0f;
  EXPECT_EQ(r.at(5), -1.0f);
  EXPECT_THROW((void)t.Reshaped(Shape{5}), Error);
}

TEST(Tensor, RandomIsDeterministicPerSeed) {
  Rng rng1(7), rng2(7), rng3(8);
  auto a = Tensor::Random(Shape{16}, rng1);
  auto b = Tensor::Random(Shape{16}, rng2);
  auto c = Tensor::Random(Shape{16}, rng3);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
  EXPECT_GT(Tensor::MaxAbsDiff(a, c), 0.0f);
}

TEST(Tensor, RandomRespectsRange) {
  Rng rng(3);
  auto t = Tensor::Random(Shape{1000}, rng, -0.5f, 0.25f);
  for (float v : t.data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.25f);
  }
}

TEST(Tensor, HeNormalScale) {
  Rng rng(11);
  auto t = Tensor::HeNormal(Shape{10000}, rng, /*fan_in=*/50);
  double sum = 0, sq = 0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / t.size();
  const double stddev = std::sqrt(sq / t.size() - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 50.0), 0.02);
}

TEST(Tensor, MaxAbsRelDiff) {
  auto a = Tensor::FromData(Shape{3}, {1.0f, 2.0f, 4.0f});
  auto b = Tensor::FromData(Shape{3}, {1.0f, 2.5f, 4.0f});
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 0.5f);
  EXPECT_FLOAT_EQ(Tensor::MaxRelDiff(a, b), 0.2f);
  EXPECT_TRUE(Tensor::AllClose(a, a));
  EXPECT_FALSE(Tensor::AllClose(a, b));
}

TEST(Tensor, ArgMax) {
  auto t = Tensor::FromData(Shape{5}, {0.1f, 0.9f, 0.3f, 0.9f, 0.0f});
  EXPECT_EQ(t.ArgMax(), 1);  // first of the ties
}

TEST(Tensor, UndefinedAccessThrows) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW((void)t.data(), Error);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(3.0f, 2.0f);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

}  // namespace
}  // namespace clflow
