// Tests for the serving layer (obs v2): the deterministic open-loop load
// generator over deployments and replica sets, and the observatory
// dashboard it feeds (JSON schema, self-contained HTML, Chrome-trace
// counters).
#include <gtest/gtest.h>

#include <string>

#include "core/deployment.hpp"
#include "ha/replica_set.hpp"
#include "nets/nets.hpp"
#include "obs/json.hpp"
#include "resilience/fault.hpp"
#include "serve/loadgen.hpp"
#include "serve/observatory.hpp"

namespace clflow {
namespace {

core::DeployOptions LenetOptions() {
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineTvmAutorun();
  o.recipe.concurrent_execution = true;
  o.board = fpga::Stratix10SX();
  o.runtime.watchdog_timeout = SimTime::Ms(2.0);
  return o;
}

struct Fixture {
  Rng rng{2021};
  graph::Graph net = nets::BuildLeNet5(rng);
  Tensor image = nets::SyntheticMnistImage(rng);

  core::Deployment Deploy() {
    return core::Deployment::Compile(net, LenetOptions());
  }
};

serve::LoadgenOptions SmallCampaign(serve::TraceShape shape) {
  serve::LoadgenOptions lo;
  lo.seed = 2021;
  lo.requests = 60;
  lo.shape = shape;
  return lo;
}

/// Board 0 hangs k_conv1 on its first 32 invocations.
std::shared_ptr<resilience::FaultInjector> SickBoardPlan() {
  resilience::FaultPlan plan;
  plan.seed = 2021;
  for (int i = 0; i < 32; ++i) {
    resilience::FaultSpec s;
    s.kind = resilience::FaultKind::kKernelHang;
    s.target = "k_conv1";
    s.index = i;
    plan.specs.push_back(s);
  }
  return std::make_shared<resilience::FaultInjector>(plan);
}

TEST(Loadgen, SameSeedSameDigestOnFreshDeployments) {
  Fixture f;
  auto d1 = f.Deploy();
  auto d2 = f.Deploy();
  const auto r1 =
      RunLoadCampaign(d1, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  const auto r2 =
      RunLoadCampaign(d2, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  EXPECT_EQ(r1.digest, r2.digest);
  EXPECT_DOUBLE_EQ(r1.p99_us, r2.p99_us);
  EXPECT_DOUBLE_EQ(r1.goodput, r2.goodput);
  // The recorded series digest identically too.
  EXPECT_EQ(r1.metrics->series("serve.arrivals").Digest(),
            r2.metrics->series("serve.arrivals").Digest());
}

TEST(Loadgen, DifferentSeedsAndShapesDiverge) {
  Fixture f;
  auto d = f.Deploy();
  const auto base =
      RunLoadCampaign(d, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  auto reseeded = SmallCampaign(serve::TraceShape::kPoisson);
  reseeded.seed = 7;
  EXPECT_NE(RunLoadCampaign(d, f.image, reseeded).digest, base.digest);
  EXPECT_NE(
      RunLoadCampaign(d, f.image, SmallCampaign(serve::TraceShape::kBursty))
          .digest,
      base.digest);
}

TEST(Loadgen, ReportInvariantsHold) {
  Fixture f;
  auto d = f.Deploy();
  const auto r =
      RunLoadCampaign(d, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  ASSERT_EQ(r.requests.size(), 60u);
  for (const auto& req : r.requests) {
    EXPECT_LE(req.arrival.ps(), req.start.ps());
    EXPECT_LT(req.start.ps(), req.completion.ps());
    EXPECT_TRUE(req.ok);
  }
  EXPECT_GT(r.p50_us, 0.0);
  EXPECT_GE(r.p99_us, r.p50_us);
  EXPECT_GT(r.goodput, 0.0);
  EXPECT_LE(r.goodput, 1.0);
  EXPECT_GT(r.offered_rps, 0.0);
  EXPECT_GT(r.peak_occupancy, 0.0);
  // Latency includes queueing: it is never below the service time.
  for (const auto& req : r.requests) {
    EXPECT_GE(req.latency().ps(), req.service().ps());
  }
  // Series totals match the record count.
  EXPECT_DOUBLE_EQ(r.metrics->series("serve.arrivals").Total(), 60.0);
  EXPECT_DOUBLE_EQ(r.metrics->series("serve.completions").Total(), 60.0);
  // The latency histogram is bucketed (bounded memory) yet within 1% of
  // the exact nearest-rank p99 computed from the records.
  const obs::Histogram& h = r.metrics->histogram("serve.latency_us");
  EXPECT_FALSE(h.retain_samples());
  EXPECT_NEAR(h.log_buckets().Quantile(0.99), r.p99_us, r.p99_us * 0.01);
}

TEST(Loadgen, RampShapeRaisesLateArrivalsRate) {
  Fixture f;
  auto d = f.Deploy();
  auto lo = SmallCampaign(serve::TraceShape::kRamp);
  lo.requests = 80;
  const auto r = RunLoadCampaign(d, f.image, lo);
  // With the rate ramping 1x -> 3x, the second half of the trace arrives
  // in less simulated time than the first half.
  const SimTime mid = r.requests[40].arrival - r.requests[0].arrival;
  const SimTime rest = r.requests[79].arrival - r.requests[40].arrival;
  EXPECT_LT(rest.ps(), mid.ps());
}

TEST(Loadgen, ReplicaSetCampaignRecordsFailoversAndHealth) {
  Fixture f;
  ha::HaOptions ha;
  ha.replicas = 2;
  ha.quarantine_after = 2;
  ha.cooldown_batches = 64;
  ha::ReplicaSet rs(f.net, LenetOptions(), ha);
  rs.set_fault_injector(0, SickBoardPlan());
  const auto r =
      RunLoadCampaign(rs, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  EXPECT_GT(r.failovers, 0);
  EXPECT_EQ(r.errors, 0);  // board 1 absorbs everything
  // Health steps are exported per board under its BoardLabel.
  bool health_series = false;
  for (const auto& [name, labels] : r.metrics->SeriesKeys()) {
    if (name == "ha.board.state" &&
        labels.count("board") != 0U &&
        labels.at("board") == rs.BoardLabel(0)) {
      health_series = true;
    }
  }
  EXPECT_TRUE(health_series);
  // The sick board's transitions were logged (healthy -> ... ->
  // quarantined at minimum).
  EXPECT_FALSE(rs.health_transitions().empty());
}

TEST(Observatory, JsonParsesAndCarriesCampaignSummary) {
  Fixture f;
  auto d = f.Deploy();
  const auto r =
      RunLoadCampaign(d, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  const serve::Observatory o = BuildObservatory(r, "lenet test");
  const auto doc = obs::json::Parse(o.ToJson());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("shape")->str, "poisson");
  EXPECT_DOUBLE_EQ(doc->Find("requests")->number, 60.0);
  EXPECT_DOUBLE_EQ(doc->Find("p99_us")->number, r.p99_us);
  EXPECT_DOUBLE_EQ(doc->Find("goodput")->number, r.goodput);
  const auto* charts = doc->Find("charts");
  ASSERT_NE(charts, nullptr);
  EXPECT_GE(charts->array.size(), 3u);  // latency, throughput, utilization
}

TEST(Observatory, HtmlIsSelfContainedAndTraceParses) {
  Fixture f;
  auto d = f.Deploy();
  const auto r =
      RunLoadCampaign(d, f.image, SmallCampaign(serve::TraceShape::kBursty));
  const serve::Observatory o = BuildObservatory(r, "lenet <bursty>");
  const std::string html = o.ToHtml();
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("lenet &lt;bursty&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<script src"), std::string::npos);  // no externals
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);

  const auto trace = obs::json::Parse(o.ToChromeTrace());
  ASSERT_TRUE(trace.has_value());
  const auto* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array.empty());
  EXPECT_EQ(events->array[0].Find("ph")->str, "C");
}

TEST(Observatory, SameSeedRendersByteIdenticalDashboards) {
  Fixture f;
  auto d1 = f.Deploy();
  auto d2 = f.Deploy();
  const auto r1 =
      RunLoadCampaign(d1, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  const auto r2 =
      RunLoadCampaign(d2, f.image, SmallCampaign(serve::TraceShape::kPoisson));
  EXPECT_EQ(BuildObservatory(r1, "t").ToHtml(),
            BuildObservatory(r2, "t").ToHtml());
  EXPECT_EQ(BuildObservatory(r1, "t").ToJson(),
            BuildObservatory(r2, "t").ToJson());
}

}  // namespace
}  // namespace clflow
