// Tests for the static-analysis layer (clflow::analysis): the diagnostic
// engine, the CLF code registry, the IR verifier, the dataflow checker,
// the perf lints, and the compile gate in core::Deployment.
//
// Every CLF code has at least one test that provokes it deliberately and
// asserts the code, severity, and fix-it of the resulting diagnostic; a
// property suite then checks that every shipped recipe compiles with zero
// error-severity findings (the paper's naive recipes intentionally carry
// CLF3xx warnings -- those are the diagnoses of Chapter 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/dataflow_checker.hpp"
#include "analysis/diag.hpp"
#include "analysis/ir_verifier.hpp"
#include "analysis/perf_lint.hpp"
#include "common/error.hpp"
#include "core/deployment.hpp"
#include "ir/passes.hpp"
#include "nets/nets.hpp"

namespace clflow::analysis {
namespace {

using ir::Add;
using ir::Block;
using ir::FloatImm;
using ir::For;
using ir::IntImm;
using ir::Load;
using ir::MakeBuffer;
using ir::MakeVar;
using ir::MemScope;
using ir::Stmt;
using ir::Store;
using ir::VarRef;

/// Asserts exactly one diagnostic with `info`'s code and returns it,
/// checking severity and that a fix-it hint is present.
Diagnostic Expect(const DiagnosticEngine& engine, const CodeInfo& info) {
  const auto found = engine.ByCode(info.id);
  EXPECT_EQ(found.size(), 1u) << "expected exactly one " << info.id
                              << ", got:\n"
                              << engine.ToText();
  if (found.empty()) return {};
  EXPECT_EQ(found[0].code, info.id);
  EXPECT_EQ(found[0].severity, info.default_severity);
  EXPECT_FALSE(found[0].fixit.empty()) << info.id << " carries no fix-it";
  return found[0];
}

// --- Code registry -----------------------------------------------------------

TEST(Codes, RegistryIsConsistent) {
  for (const CodeInfo* info : kAllCodes) {
    EXPECT_EQ(info->id.substr(0, 3), "CLF");
    EXPECT_FALSE(info->title.empty());
    EXPECT_FALSE(info->paper_ref.empty());
    EXPECT_FALSE(info->default_fixit.empty());
    EXPECT_EQ(FindCode(info->id), info);
  }
  EXPECT_EQ(FindCode("CLF999"), nullptr);
  // Ids are unique.
  for (const CodeInfo* a : kAllCodes) {
    int hits = 0;
    for (const CodeInfo* b : kAllCodes) {
      if (a->id == b->id) ++hits;
    }
    EXPECT_EQ(hits, 1) << a->id;
  }
}

// --- Diagnostic engine -------------------------------------------------------

TEST(DiagnosticEngine, CountsAndRenders) {
  DiagnosticEngine engine;
  engine.Report(Diagnostic::Make(kOutOfBounds, {"k", "i", "buf"}, "oob"));
  engine.Report(Diagnostic::Make(kUnpinnedStride, {"k", "", "w"}, "stride"));
  EXPECT_EQ(engine.error_count(), 1);
  EXPECT_EQ(engine.warning_count(), 1);
  EXPECT_TRUE(engine.HasErrors());
  const std::string text = engine.ToText();
  EXPECT_NE(text.find("CLF102"), std::string::npos);
  EXPECT_NE(text.find("CLF301"), std::string::npos);
  const std::string json = engine.ToJson();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  engine.Clear();
  EXPECT_FALSE(engine.HasErrors());
  EXPECT_TRUE(engine.diagnostics().empty());
}

TEST(DiagnosticEngine, SeverityOverridesPromoteAndDemote) {
  DiagnosticEngine engine;
  engine.OverrideSeverity("CLF301", Severity::kError);
  engine.OverrideSeverity("CLF201", Severity::kWarning);
  engine.Report(Diagnostic::Make(kUnpinnedStride, {"k", "", "w"}, "m"));
  engine.Report(Diagnostic::Make(kChannelNoWriter, {"k", "", "ch"}, "m"));
  EXPECT_EQ(engine.error_count(), 1);   // promoted lint
  EXPECT_EQ(engine.warning_count(), 1);  // demoted deadlock
  EXPECT_EQ(engine.ByCode("CLF301")[0].severity, Severity::kError);
  EXPECT_EQ(engine.ByCode("CLF201")[0].severity, Severity::kWarning);
}

// --- IR verifier -------------------------------------------------------------

TEST(IrVerifier, Clf101UndefinedVariable) {
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  auto ghost = MakeVar("ghost");
  ir::Kernel k;
  k.name = "k";
  k.buffer_args = {a};
  k.body = For(i, IntImm(0), IntImm(8),
               Store(a, {VarRef(i)}, VarRef(ghost)));
  DiagnosticEngine engine;
  EXPECT_GT(VerifyKernel(k, engine), 0);
  const auto d = Expect(engine, kUndefinedVar);
  EXPECT_EQ(d.location.kernel, "k");
  EXPECT_NE(d.message.find("ghost"), std::string::npos);
}

TEST(IrVerifier, Clf102OutOfBoundsStore) {
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  ir::Kernel k;
  k.name = "k";
  k.buffer_args = {a};
  k.body = For(i, IntImm(0), IntImm(8),
               Store(a, {Add(VarRef(i), IntImm(4))}, FloatImm(0)));
  DiagnosticEngine engine;
  EXPECT_GT(VerifyKernel(k, engine), 0);
  const auto d = Expect(engine, kOutOfBounds);
  EXPECT_EQ(d.location.buffer, "a");
  EXPECT_EQ(d.location.loop, "i");
}

TEST(IrVerifier, Clf102GuardedAccessIsNotFlagged) {
  // The padding pattern: a Select whose taken branch guards the address.
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto b = MakeBuffer("b", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  ir::Kernel k;
  k.name = "pad";
  k.buffer_args = {a, b};
  k.body = For(i, IntImm(0), IntImm(8),
               Store(b, {VarRef(i)},
                     ir::Select(ir::Binary(ir::BinOp::kLt, VarRef(i), IntImm(7)),
                                Load(a, {Add(VarRef(i), IntImm(1))}),
                                FloatImm(0))));
  DiagnosticEngine engine;
  EXPECT_EQ(VerifyKernel(k, engine), 0) << engine.ToText();
}

TEST(IrVerifier, Clf103CrossLaneUnrollDependence) {
  // a[i+1] = a[i] under full unrolling: lane i+1 reads what lane i writes,
  // but the lanes execute concurrently.
  auto a = MakeBuffer("a", {IntImm(16)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  ir::ForAnnotation ann;
  ann.unroll = -1;
  ir::Kernel k;
  k.name = "shift";
  k.buffer_args = {a};
  k.body = For(i, IntImm(0), IntImm(8),
               Store(a, {Add(VarRef(i), IntImm(1))}, Load(a, {VarRef(i)})),
               ann);
  DiagnosticEngine engine;
  EXPECT_GT(VerifyKernel(k, engine), 0);
  const auto d = Expect(engine, kUnrollDependence);
  EXPECT_EQ(d.location.loop, "i");
  EXPECT_EQ(d.location.buffer, "a");
}

TEST(IrVerifier, Clf103ReductionIsLegal) {
  // acc[0] += x[i] under unrolling is the legal pattern (AOC builds an
  // adder tree); same-element store/load must not be flagged.
  auto x = MakeBuffer("x", {IntImm(8)}, MemScope::kGlobal, true);
  auto acc = MakeBuffer("acc", {IntImm(1)}, MemScope::kPrivate);
  auto i = MakeVar("i");
  ir::ForAnnotation ann;
  ann.unroll = -1;
  ir::Kernel k;
  k.name = "reduce";
  k.buffer_args = {x};
  k.local_buffers = {acc};
  k.body = Block(
      {Store(acc, {IntImm(0)}, FloatImm(0)),
       For(i, IntImm(0), IntImm(8),
           Store(acc, {IntImm(0)},
                 Add(Load(acc, {IntImm(0)}), Load(x, {VarRef(i)}))),
           ann)});
  DiagnosticEngine engine;
  EXPECT_EQ(VerifyKernel(k, engine), 0) << engine.ToText();
}

TEST(IrVerifier, Clf104StoreToConstantBuffer) {
  auto w = MakeBuffer("w", {IntImm(4)}, MemScope::kConstant, true);
  auto i = MakeVar("i");
  ir::Kernel k;
  k.name = "k";
  k.buffer_args = {w};
  k.body = For(i, IntImm(0), IntImm(4), Store(w, {VarRef(i)}, FloatImm(0)));
  DiagnosticEngine engine;
  EXPECT_GT(VerifyKernel(k, engine), 0);
  const auto d = Expect(engine, kScopeViolation);
  EXPECT_EQ(d.location.buffer, "w");
}

TEST(IrVerifier, Clf105UnrollOnSymbolicExtent) {
  auto a = MakeBuffer("a", {IntImm(64)}, MemScope::kGlobal, true);
  auto n = MakeVar("N", ir::VarKind::kShapeParam);
  auto i = MakeVar("i");
  ir::ForAnnotation ann;
  ann.unroll = -1;
  ir::Kernel k;
  k.name = "k";
  k.buffer_args = {a};
  k.scalar_args = {n};
  k.body = For(i, IntImm(0), VarRef(n),
               Store(a, {IntImm(0)}, FloatImm(0)), ann);
  DiagnosticEngine engine;
  EXPECT_GT(VerifyKernel(k, engine), 0);
  const auto d = Expect(engine, kUnrollNonConst);
  EXPECT_EQ(d.location.loop, "i");
}

TEST(IrVerifier, Clf106UninitializedOnChipRead) {
  auto out = MakeBuffer("out", {IntImm(4)}, MemScope::kGlobal, true);
  auto scratch = MakeBuffer("scratch", {IntImm(4)}, MemScope::kLocal);
  auto i = MakeVar("i");
  ir::Kernel k;
  k.name = "k";
  k.buffer_args = {out};
  k.local_buffers = {scratch};
  k.body = For(i, IntImm(0), IntImm(4),
               Store(out, {VarRef(i)}, Load(scratch, {VarRef(i)})));
  DiagnosticEngine engine;
  EXPECT_GT(VerifyKernel(k, engine), 0);
  const auto d = Expect(engine, kUninitRead);
  EXPECT_EQ(d.location.buffer, "scratch");
}

// --- Dataflow checker --------------------------------------------------------

/// Compact PlanStep factory for hand-built plans.
PlanStep Step(std::string kernel, int queue = 0, bool autorun = false,
              std::int64_t num_args = 0, double channel_writes = 0.0,
              std::vector<std::string> reads = {},
              std::vector<std::string> writes = {},
              std::vector<int> deps = {}) {
  PlanStep s;
  s.kernel = std::move(kernel);
  s.queue = queue;
  s.autorun = autorun;
  s.num_args = num_args;
  s.channel_writes = channel_writes;
  s.reads = std::move(reads);
  s.writes = std::move(writes);
  s.deps = std::move(deps);
  return s;
}

TEST(DataflowChecker, Clf201ChannelWithoutProducer) {
  Plan plan;
  plan.steps.push_back(Step("consumer", 0, false, 0, 0, {"ch"}));
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  const auto d = Expect(engine, kChannelNoWriter);
  EXPECT_EQ(d.location.buffer, "ch");
}

TEST(DataflowChecker, Clf202MultipleWriters) {
  Plan plan;
  plan.steps.push_back(Step("w1", 0, false, 0, 0, {}, {"ch"}));
  plan.steps.push_back(Step("w2", 0, false, 0, 0, {}, {"ch"}));
  plan.steps.push_back(Step("r", 1, false, 0, 0, {"ch"}));
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  (void)Expect(engine, kChannelEndpoints);
}

TEST(DataflowChecker, Clf203ConsumerEnqueuedBeforeProducer) {
  Plan plan;
  plan.steps.push_back(Step("consumer", 0, false, 0, 0, {"ch"}));
  plan.steps.push_back(Step("producer", 0, false, 0, 0, {}, {"ch"}));
  plan.channels["ch"] = 1024;
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  const auto d = Expect(engine, kChannelDeadlock);
  EXPECT_EQ(d.location.kernel, "consumer");
}

TEST(DataflowChecker, Clf203FifoDepthCannotAbsorbProducer) {
  Plan plan;
  plan.steps.push_back(Step("producer", 0, false, 0, 4096, {}, {"ch"}));
  plan.steps.push_back(Step("consumer", 0, false, 0, 0, {"ch"}));
  plan.channels["ch"] = 16;  // same queue 0: FIFO must buffer all 4096
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  (void)Expect(engine, kChannelDeadlock);
}

TEST(DataflowChecker, Clf203ChannelCycle) {
  Plan plan;
  plan.steps.push_back(Step("a", 0, false, 0, 0, {"back"}, {"fwd"}));
  plan.steps.push_back(Step("b", 1, false, 0, 0, {"fwd"}, {"back"}));
  plan.channels["fwd"] = 1;
  plan.channels["back"] = 1;
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  EXPECT_FALSE(engine.ByCode("CLF203").empty()) << engine.ToText();
}

TEST(DataflowChecker, Clf204AutorunWithArguments) {
  Plan plan;
  plan.steps.push_back(Step("auto", 0, true, 3, 0, {"in"}, {"out"}));
  plan.steps.push_back(Step("p", 0, false, 0, 0, {}, {"in"}));
  plan.steps.push_back(Step("c", 0, false, 0, 0, {"out"}));
  plan.channels["in"] = 1024;
  plan.channels["out"] = 1024;
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  (void)Expect(engine, kAutorunWithArgs);
}

TEST(DataflowChecker, Clf205CrossQueueHazardWithoutChannel) {
  Plan plan;
  plan.steps.push_back(Step("producer", 0));
  plan.steps.push_back(Step("consumer", 1, false, 0, 0, {}, {}, {0}));
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  const auto d = Expect(engine, kQueueHazard);
  EXPECT_EQ(d.location.kernel, "consumer");
}

TEST(DataflowChecker, CleanPipelineHasNoFindings) {
  Plan plan;
  plan.steps.push_back(Step("a", 0, false, 2, 64, {}, {"ab"}));
  plan.steps.push_back(Step("b", 1, true, 0, 64, {"ab"}, {"bc"}, {0}));
  plan.steps.push_back(Step("c", 2, false, 2, 0, {"bc"}, {}, {1}));
  plan.channels["ab"] = 64;
  plan.channels["bc"] = 64;
  DiagnosticEngine engine;
  EXPECT_EQ(CheckDataflow(plan, engine), 0) << engine.ToText();
}

// --- Perf lints --------------------------------------------------------------

TEST(PerfLint, Clf301UnpinnedStride) {
  auto s0 = MakeVar("x_s0", ir::VarKind::kShapeParam);
  auto a = MakeBuffer("x", {IntImm(8), IntImm(8)}, MemScope::kGlobal, true);
  a->strides = {VarRef(s0), VarRef(s0)};
  ir::Kernel k;
  k.name = "sym";
  k.buffer_args = {a};
  k.scalar_args = {s0};
  k.body = Store(a, {IntImm(0), IntImm(0)}, FloatImm(0));
  DiagnosticEngine engine;
  EXPECT_GT(LintKernel(k, nullptr, engine), 0);
  const auto d = Expect(engine, kUnpinnedStride);
  EXPECT_NE(d.fixit.find("PinStrideVars"), std::string::npos);
}

TEST(PerfLint, Clf302GlobalAccumulator) {
  auto x = MakeBuffer("x", {IntImm(8)}, MemScope::kGlobal, true);
  auto dot = MakeBuffer("dot", {IntImm(1)}, MemScope::kGlobal, true);
  auto out = MakeBuffer("out", {IntImm(1)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  ir::Kernel k;
  k.name = "naive_dense";
  k.buffer_args = {x, dot, out};
  k.body = Block({For(i, IntImm(0), IntImm(8),
                      Store(dot, {IntImm(0)},
                            Add(Load(dot, {IntImm(0)}), Load(x, {VarRef(i)})))),
                  Store(out, {IntImm(0)}, Load(dot, {IntImm(0)}))});
  DiagnosticEngine engine;
  EXPECT_GT(LintKernel(k, nullptr, engine), 0);
  const auto d = Expect(engine, kGlobalAccumulator);
  EXPECT_EQ(d.location.buffer, "dot");
  EXPECT_NE(d.fixit.find("CacheWrite"), std::string::npos);
}

TEST(PerfLint, Clf303NonDivisibleUnroll) {
  auto a = MakeBuffer("a", {IntImm(10)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  ir::ForAnnotation ann;
  ann.unroll = 4;
  ir::Kernel k;
  k.name = "k";
  k.buffer_args = {a};
  k.body = For(i, IntImm(0), IntImm(10),
               Store(a, {VarRef(i)}, FloatImm(0)), ann);
  DiagnosticEngine engine;
  EXPECT_GT(LintKernel(k, nullptr, engine), 0);
  const auto d = Expect(engine, kNonDivisibleUnroll);
  EXPECT_EQ(d.location.loop, "i");
}

TEST(PerfLint, Clf304NonBurstAccess) {
  ir::Kernel k;
  k.name = "k";
  k.body = Block({});
  ir::KernelStats stats;
  ir::AccessSite site;
  site.buffer = "weights";
  site.sequential = false;
  site.run_elems = 1;
  stats.accesses.push_back(site);
  DiagnosticEngine engine;
  EXPECT_GT(LintKernel(k, &stats, engine), 0);
  const auto d = Expect(engine, kNonBurstAccess);
  EXPECT_EQ(d.location.buffer, "weights");
}

TEST(PerfLint, Clf305MissedAutorun) {
  Plan plan;
  plan.steps.push_back(Step("between", 0, false, 0, 0, {"in"}, {"out"}));
  DiagnosticEngine engine;
  EXPECT_GT(LintPlan(plan, engine), 0);
  const auto d = Expect(engine, kMissedAutorun);
  EXPECT_NE(d.fixit.find("autorun"), std::string::npos);
}

// --- Schedule errors carry structured CLF context ---------------------------

TEST(ScheduleErrors, NonDivisibleSplitCarriesContext) {
  auto a = MakeBuffer("a", {IntImm(12)}, MemScope::kGlobal, true);
  auto k = MakeVar("k");
  Stmt root = For(k, IntImm(0), IntImm(12),
                  Store(a, {VarRef(k)}, FloatImm(0)));
  try {
    (void)ir::SplitLoop(root, "k", 5);
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    EXPECT_EQ(e.code(), "CLF403");
    EXPECT_EQ(e.loop(), "k");
    EXPECT_EQ(e.extent(), 12);
    EXPECT_EQ(std::string(e.what()).substr(0, 8), "CLF403: ");
    const Diagnostic d = FromScheduleError(e);
    EXPECT_EQ(d.code, "CLF403");
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_EQ(d.location.loop, "k");
    // The rendered message is not double-prefixed.
    EXPECT_EQ(d.message.find("CLF403"), std::string::npos);
  }
}

TEST(ScheduleErrors, MissingTargetIsClf401) {
  auto a = MakeBuffer("a", {IntImm(4)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  Stmt root = For(i, IntImm(0), IntImm(4),
                  Store(a, {VarRef(i)}, FloatImm(0)));
  try {
    (void)ir::FindLoop(root, "zz");
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    EXPECT_EQ(e.code(), "CLF401");
    EXPECT_EQ(e.loop(), "zz");
  }
}

TEST(ScheduleErrors, SymbolicExtentIsClf402) {
  auto a = MakeBuffer("a", {IntImm(64)}, MemScope::kGlobal, true);
  auto n = MakeVar("N", ir::VarKind::kShapeParam);
  auto i = MakeVar("i");
  Stmt root = For(i, IntImm(0), VarRef(n),
                  Store(a, {IntImm(0)}, FloatImm(0)));
  try {
    (void)ir::UnrollLoop(root, "i", -1);
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    EXPECT_EQ(e.code(), "CLF402");
    EXPECT_EQ(e.loop(), "i");
  }
}

TEST(ScheduleErrors, CacheWriteMisuseIsClf406) {
  auto a = MakeBuffer("a", {IntImm(4)}, MemScope::kGlobal, true);
  auto out = MakeBuffer("out", {IntImm(4)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  ir::Kernel k;
  k.name = "copy";
  k.buffer_args = {a, out};
  k.body = For(i, IntImm(0), IntImm(4),
               Store(out, {VarRef(i)}, Load(a, {VarRef(i)})));
  try {
    ir::CacheWrite(k, "out");
    FAIL() << "expected ScheduleError";
  } catch (const ScheduleError& e) {
    EXPECT_EQ(e.code(), "CLF406");
    EXPECT_EQ(e.kernel(), "copy");
  }
}

TEST(ScheduleErrors, LegacyConstructorDefaultsToClf405) {
  const ScheduleError e("something structural");
  EXPECT_EQ(e.code(), "CLF405");
  const Diagnostic d = FromScheduleError(e);
  EXPECT_EQ(d.code, "CLF405");
  EXPECT_EQ(d.message, "something structural");
}

// --- Pass-verifier hook ------------------------------------------------------

TEST(PassVerifierHook, InvokedAfterEveryPrimitive) {
  auto a = MakeBuffer("a", {IntImm(8)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");
  Stmt root = For(i, IntImm(0), IntImm(8),
                  Store(a, {VarRef(i)}, FloatImm(0)));
  std::vector<std::string> seen;
  EXPECT_EQ(ir::CurrentPassVerifier(), nullptr);
  {
    ir::ScopedPassVerifier gate(
        [&](const Stmt& result, const char* pass) {
          ASSERT_NE(result, nullptr);
          seen.emplace_back(pass);
        });
    EXPECT_NE(ir::CurrentPassVerifier(), nullptr);
    Stmt split = ir::SplitLoop(root, "i", 4);
    (void)ir::UnrollLoop(split, "i_o", 2);
  }
  EXPECT_EQ(ir::CurrentPassVerifier(), nullptr);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "SplitLoop");
  EXPECT_EQ(seen[1], "UnrollLoop");
}

// --- Deployment gate + recipe property suite ---------------------------------

core::Deployment CompileLeNet(core::OptimizationRecipe recipe,
                              core::ExecutionMode mode,
                              core::AnalysisOptions analysis = {}) {
  Rng rng(7);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = mode;
  o.recipe = std::move(recipe);
  o.board = fpga::Stratix10SX();
  o.analysis = std::move(analysis);
  return core::Deployment::Compile(net, o);
}

TEST(DeploymentGate, EveryPipelineRecipeLintsClean) {
  for (const auto& recipe : core::PipelineLadder()) {
    auto d = CompileLeNet(recipe, core::ExecutionMode::kPipelined);
    EXPECT_FALSE(d.diagnostics().HasErrors())
        << recipe.name << ":\n" << d.diagnostics().ToText();
  }
}

TEST(DeploymentGate, FoldedRecipesLintClean) {
  Rng rng(7);
  graph::Graph mobilenet = nets::BuildMobileNetV1(rng);
  graph::Graph resnet = nets::BuildResNet(18, rng);
  for (const auto& board : fpga::EvaluationBoards()) {
    core::DeployOptions o;
    o.mode = core::ExecutionMode::kFolded;
    o.recipe = core::FoldedMobileNet(board.key);
    o.board = board;
    auto d = core::Deployment::Compile(mobilenet, o);
    EXPECT_FALSE(d.diagnostics().HasErrors())
        << board.key << ":\n" << d.diagnostics().ToText();
  }
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kFolded;
  o.recipe = core::FoldedResNet();
  o.board = fpga::Stratix10SX();
  auto d = core::Deployment::Compile(resnet, o);
  EXPECT_FALSE(d.diagnostics().HasErrors()) << d.diagnostics().ToText();

  auto base = CompileLeNet(core::FoldedBase(), core::ExecutionMode::kFolded);
  EXPECT_FALSE(base.diagnostics().HasErrors())
      << base.diagnostics().ToText();
}

TEST(DeploymentGate, NaiveRecipeCarriesThePaperWarnings) {
  // The naive pipelined schedule is exactly what Chapter 6 diagnoses:
  // global-memory accumulators (CLF302). The optimized TVM-Autorun rung
  // has none of the CLF301/302/305 diagnoses left.
  auto naive = CompileLeNet(core::PipelineBase(),
                            core::ExecutionMode::kPipelined);
  EXPECT_FALSE(naive.diagnostics().ByCode("CLF302").empty());
  EXPECT_FALSE(naive.diagnostics().HasErrors());

  auto tuned = CompileLeNet(core::PipelineTvmAutorun(),
                            core::ExecutionMode::kPipelined);
  EXPECT_TRUE(tuned.diagnostics().ByCode("CLF301").empty());
  EXPECT_TRUE(tuned.diagnostics().ByCode("CLF302").empty());
  EXPECT_TRUE(tuned.diagnostics().ByCode("CLF305").empty());
}

TEST(DeploymentGate, PromotedLintAbortsCompilation) {
  core::AnalysisOptions analysis;
  analysis.severity_overrides["CLF302"] = Severity::kError;
  EXPECT_THROW((void)CompileLeNet(core::PipelineBase(),
                                  core::ExecutionMode::kPipelined,
                                  analysis),
               VerifyError);
}

TEST(DeploymentGate, DisabledGateSkipsAnalysis) {
  core::AnalysisOptions analysis;
  analysis.verify = false;
  auto d = CompileLeNet(core::PipelineBase(),
                        core::ExecutionMode::kPipelined, analysis);
  EXPECT_TRUE(d.diagnostics().diagnostics().empty());
}

TEST(DeploymentGate, AnalysisPlanMirrorsInvocations) {
  auto recipe = core::PipelineTvmAutorun();
  recipe.concurrent_execution = true;
  auto d = CompileLeNet(recipe, core::ExecutionMode::kPipelined);
  const Plan plan = d.AnalysisPlan();
  ASSERT_EQ(plan.steps.size(), d.invocations().size());
  EXPECT_FALSE(plan.channels.empty());
  // Interior kernels are channel-linked; the checker accepts the plan.
  DiagnosticEngine engine;
  EXPECT_EQ(CheckDataflow(plan, engine), 0) << engine.ToText();
}

TEST(DeploymentGate, BrokenChannelGraphIsRejectedStatically) {
  // Acceptance check for the tentpole: a channel consumer whose producer
  // is missing used to compile fine and only deadlock inside ocl::Runtime
  // (which reports the same CLF201). The dataflow checker now rejects the
  // plan before any runtime exists.
  auto recipe = core::PipelineTvmAutorun();
  recipe.concurrent_execution = true;
  auto d = CompileLeNet(recipe, core::ExecutionMode::kPipelined);
  Plan plan = d.AnalysisPlan();
  PlanStep bogus;
  bogus.kernel = "k_injected";
  bogus.reads = {"ch_nobody_writes_this"};
  plan.steps.push_back(std::move(bogus));
  DiagnosticEngine engine;
  EXPECT_GT(CheckDataflow(plan, engine), 0);
  const auto found = engine.ByCode(kChannelNoWriter.id);
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0].severity, Severity::kError);
}

TEST(DeploymentGate, DiagnosticsLandInMetricsRegistry) {
  auto d = CompileLeNet(core::PipelineBase(),
                        core::ExecutionMode::kPipelined);
  // Every report bumps analysis.diag{code=...} on the deployment registry.
  const std::string json = d.telemetry().registry.ToJson();
  EXPECT_NE(json.find("analysis.diag"), std::string::npos);
}

}  // namespace
}  // namespace clflow::analysis
