// Tests for clflow::srclint, the source-level linter / translation
// validator (CLF8xx): lexer and parser units, the peeled CFG, one
// injected-defect test per code proving it fires, clean runs over the
// shipped recipes, the Compile-gate rejection path, and the
// channel-dtype emitter bug re-detected from the source alone.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "codegen/opencl_codegen.hpp"
#include "common/error.hpp"
#include "core/deployment.hpp"
#include "nets/nets.hpp"
#include "srclint/cfg.hpp"
#include "srclint/inject.hpp"
#include "srclint/lexer.hpp"
#include "srclint/parser.hpp"
#include "srclint/srclint.hpp"

namespace clflow::srclint {
namespace {

std::set<std::string> Codes(const analysis::DiagnosticEngine& diags) {
  std::set<std::string> codes;
  for (const auto& d : diags.diagnostics()) codes.insert(d.code);
  return codes;
}

// --- Lexer ------------------------------------------------------------------

TEST(SrcLexer, TokenizesTheEmittedDialect) {
  const auto toks = Lex("for (int i = 0; i < 10; ++i)\n  out[i] = 1.5f;\n");
  ASSERT_GT(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "for");
  EXPECT_EQ(toks.back().kind, TokKind::kEof);
  bool saw_float = false;
  for (const auto& t : toks) {
    if (t.kind == TokKind::kFloatLit) {
      saw_float = true;
      EXPECT_DOUBLE_EQ(t.float_value, 1.5);
    }
  }
  EXPECT_TRUE(saw_float);
}

TEST(SrcLexer, PragmaIsOneTokenAndLinesTrack) {
  const auto toks = Lex("#pragma unroll 4\nfor");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kPragma);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].text, "for");
  EXPECT_EQ(toks[1].line, 2);
}

TEST(SrcLexer, RejectsForeignCharacters) {
  EXPECT_THROW(Lex("int i = @;"), SrcParseError);
}

// --- Parser -----------------------------------------------------------------

constexpr const char* kTinyKernel =
    "#pragma OPENCL EXTENSION cl_intel_channels : enable\n"
    "channel float ch_a __attribute__((depth(8)));\n"
    "__attribute__((max_global_work_dim(0)))\n"
    "__attribute__((autorun))\n"
    "__kernel void k_tiny() {\n"
    "  float acc[4][2];\n"
    "  #pragma unroll 2\n"
    "  for (int i = 0; i < 4; ++i) {\n"
    "    acc[i][0] = ((i >= 2) ? 1.0f : 0.0f);\n"
    "    write_channel_intel(ch_a, acc[i][0]);\n"
    "  }\n"
    "}\n";

TEST(SrcParser, ReconstructsProgramStructure) {
  const SrcProgram p = ParseProgram(kTinyKernel);
  EXPECT_TRUE(p.channels_extension);
  ASSERT_EQ(p.channels.size(), 1u);
  EXPECT_EQ(p.channels[0].name, "ch_a");
  EXPECT_EQ(p.channels[0].type, "float");
  EXPECT_EQ(p.channels[0].depth, 8);
  ASSERT_EQ(p.kernels.size(), 1u);
  const SrcKernel& k = p.kernels[0];
  EXPECT_EQ(k.name, "k_tiny");
  EXPECT_TRUE(k.attr_autorun);
  EXPECT_TRUE(k.attr_max_global_work_dim0);
  ASSERT_EQ(k.locals.size(), 1u);
  EXPECT_EQ(k.locals[0].name, "acc");
  EXPECT_EQ(k.locals[0].dims.size(), 2u);
  ASSERT_EQ(k.body.size(), 1u);
  const SrcStmt& loop = *k.body[0];
  EXPECT_EQ(loop.kind, SrcStmtKind::kFor);
  EXPECT_EQ(loop.loop_var, "i");
  EXPECT_EQ(loop.unroll, 2);
  ASSERT_EQ(loop.body.size(), 2u);
  EXPECT_EQ(loop.body[0]->kind, SrcStmtKind::kAssign);
  EXPECT_EQ(loop.body[0]->value->kind, SrcExprKind::kTernary);
  EXPECT_EQ(loop.body[1]->kind, SrcStmtKind::kCallStmt);
  EXPECT_EQ(loop.body[1]->call->name, "write_channel_intel");
}

TEST(SrcParser, ExpressionPrecedenceWithoutParens) {
  // The emitter parenthesizes everything; a hand-edited source must
  // still parse with C precedence.
  const auto e = ParseExpr("a + b * c");
  ASSERT_EQ(e->kind, SrcExprKind::kBinary);
  EXPECT_EQ(e->op, "+");
  EXPECT_EQ(e->args[1]->kind, SrcExprKind::kBinary);
  EXPECT_EQ(e->args[1]->op, "*");
}

TEST(SrcParser, PrintParseFixpoint) {
  const SrcProgram once = ParseProgram(kTinyKernel);
  const std::string printed = ToSource(once);
  const SrcProgram twice = ParseProgram(printed);
  EXPECT_EQ(printed, ToSource(twice));
}

TEST(SrcParser, RejectsNonCanonicalFor) {
  EXPECT_THROW(
      ParseProgram("__kernel void k_bad() {\n"
                   "  for (int i = 0; i <= 4; ++i) {\n  }\n}\n"),
      SrcParseError);
}

// --- CFG --------------------------------------------------------------------

TEST(SrcCfg, LoopIsPeeledAndOrdersEvents) {
  const SrcProgram p = ParseProgram(
      "__kernel void k_cfg(__global float* restrict out) {\n"
      "  float acc[4];\n"
      "  for (int i = 0; i < 4; ++i) {\n"
      "    acc[i] = 0.0f;\n"
      "  }\n"
      "  out[0] = acc[0];\n"
      "}\n");
  const Cfg cfg = BuildCfg(p.kernels[0]);
  // Peeling duplicates the body: the store to acc must appear as a write
  // event at least twice (first-iteration path + repeat path).
  int acc_writes = 0;
  for (const auto& n : cfg.nodes) {
    for (const auto& ev : n.events) {
      if (ev.is_write && ev.var == "acc") ++acc_writes;
    }
  }
  EXPECT_GE(acc_writes, 2);
  EXPECT_LT(cfg.entry, static_cast<int>(cfg.nodes.size()));
  EXPECT_LT(cfg.exit, static_cast<int>(cfg.nodes.size()));
}

// --- Injected defects: every CLF8xx code fires ------------------------------

class SrclintInjection : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(77);
    graph::Graph net = nets::BuildLeNet5(rng);
    core::DeployOptions o;
    o.mode = core::ExecutionMode::kPipelined;
    o.recipe = core::PipelineTvmAutorun();
    o.board = fpga::Stratix10SX();
    deployment_ = new core::Deployment(core::Deployment::Compile(net, o));
    source_ = new std::string(deployment_->GeneratedSource());
  }
  static void TearDownTestSuite() {
    delete deployment_;
    delete source_;
    deployment_ = nullptr;
    source_ = nullptr;
  }

  static std::vector<const ir::Kernel*> Planned() {
    std::vector<const ir::Kernel*> kernels;
    for (const auto& pk : deployment_->kernels()) {
      kernels.push_back(&pk.built.kernel);
    }
    return kernels;
  }

  /// Corrupts the real emission with `mode`, lints it against the plan,
  /// and returns the diagnostics.
  static analysis::DiagnosticEngine LintCorrupted(const std::string& mode) {
    analysis::DiagnosticEngine diags;
    auto corrupted = InjectDefect(mode, *source_);
    EXPECT_TRUE(corrupted.has_value()) << "no anchor for mode " << mode;
    LintProgram(*corrupted, Planned(), diags);
    return diags;
  }

  static core::Deployment* deployment_;
  static std::string* source_;
};

core::Deployment* SrclintInjection::deployment_ = nullptr;
std::string* SrclintInjection::source_ = nullptr;

TEST_F(SrclintInjection, CleanEmissionHasZeroFindings) {
  analysis::DiagnosticEngine diags;
  EXPECT_TRUE(LintProgram(*source_, Planned(), diags));
  EXPECT_EQ(diags.error_count(), 0) << diags.ToText();
  EXPECT_EQ(diags.warning_count(), 0) << diags.ToText();
}

TEST_F(SrclintInjection, ParseFailureFiresCLF800) {
  const auto diags = LintCorrupted("parse");
  EXPECT_TRUE(Codes(diags).count("CLF800"));
  EXPECT_GT(diags.error_count(), 0);
}

TEST_F(SrclintInjection, RenamedKernelFiresCLF801) {
  const auto diags = LintCorrupted("sig");
  EXPECT_TRUE(Codes(diags).count("CLF801"));
  EXPECT_GT(diags.error_count(), 0);
}

TEST_F(SrclintInjection, DroppedChannelWriteFiresCLF802) {
  const auto diags = LintCorrupted("chan-endpoint");
  EXPECT_TRUE(Codes(diags).count("CLF802"));
  EXPECT_GT(diags.error_count(), 0);
}

TEST_F(SrclintInjection, DroppedUnrollPragmaFiresCLF803) {
  const auto diags = LintCorrupted("unroll");
  EXPECT_TRUE(Codes(diags).count("CLF803"));
  EXPECT_GT(diags.error_count(), 0);
}

TEST_F(SrclintInjection, RetypedChannelFiresCLF804) {
  const auto diags = LintCorrupted("chan-type");
  EXPECT_TRUE(Codes(diags).count("CLF804"));
  EXPECT_GT(diags.error_count(), 0);
}

TEST_F(SrclintInjection, StrippedRestrictFiresCLF807AsWarning) {
  const auto diags = LintCorrupted("restrict");
  EXPECT_TRUE(Codes(diags).count("CLF807"));
  EXPECT_EQ(diags.error_count(), 0);
  EXPECT_GT(diags.warning_count(), 0);
}

/// The plan-free codes fire on the built-in defective kernels (the same
/// snippets `flow_inspector --srclint-inject` lints).
struct SnippetCase {
  const char* mode;
  const char* code;
  bool is_error;
};

class SrclintSnippet : public ::testing::TestWithParam<SnippetCase> {};

TEST_P(SrclintSnippet, FiresExactlyItsCode) {
  const SnippetCase& c = GetParam();
  const char* snippet = SyntheticDefectSnippet(c.mode);
  ASSERT_NE(snippet, nullptr);
  analysis::DiagnosticEngine diags;
  LintSource(snippet, diags);
  EXPECT_TRUE(Codes(diags).count(c.code)) << diags.ToText();
  EXPECT_EQ(diags.error_count() > 0, c.is_error) << diags.ToText();
}

INSTANTIATE_TEST_SUITE_P(
    AllPlanFreeCodes, SrclintSnippet,
    ::testing::Values(SnippetCase{"loop-dep", "CLF805", true},
                      SnippetCase{"oob", "CLF806", true},
                      SnippetCase{"dead-store", "CLF808", false},
                      SnippetCase{"uninit", "CLF809", false}),
    [](const ::testing::TestParamInfo<SnippetCase>& info) {
      return std::string(info.param.code);
    });

// --- The compile gate rejects a corrupted emission --------------------------

TEST(SrclintGate, CorruptedEmissionAbortsCompile) {
  Rng rng(77);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineTvmAutorun();
  o.board = fpga::Stratix10SX();
  o.analysis.srclint_inject = "chan-type";
  try {
    auto d = core::Deployment::Compile(net, o);
    FAIL() << "gate accepted a retyped channel declaration";
  } catch (const VerifyError& e) {
    EXPECT_NE(std::string(e.what()).find("CLF804"), std::string::npos)
        << e.what();
  }
}

TEST(SrclintGate, DisablingTheGateLetsTheSameDefectThrough) {
  Rng rng(77);
  graph::Graph net = nets::BuildLeNet5(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kPipelined;
  o.recipe = core::PipelineTvmAutorun();
  o.board = fpga::Stratix10SX();
  o.analysis.srclint_inject = "chan-type";
  o.analysis.lint_source = false;
  auto d = core::Deployment::Compile(net, o);
  EXPECT_TRUE(d.ok());
}

// --- Clean over every shipped pipelined recipe ------------------------------

TEST(SrclintClean, EveryPipelineLadderRungLintsClean) {
  Rng rng(77);
  graph::Graph net = nets::BuildLeNet5(rng);
  for (const auto& recipe : core::PipelineLadder()) {
    core::DeployOptions o;
    o.mode = core::ExecutionMode::kPipelined;
    o.recipe = recipe;
    o.board = fpga::Stratix10SX();
    auto d = core::Deployment::Compile(net, o);
    std::vector<const ir::Kernel*> kernels;
    for (const auto& pk : d.kernels()) kernels.push_back(&pk.built.kernel);
    analysis::DiagnosticEngine diags;
    EXPECT_TRUE(LintProgram(d.GeneratedSource(), kernels, diags));
    EXPECT_EQ(diags.error_count(), 0) << recipe.name << "\n" << diags.ToText();
    EXPECT_EQ(diags.warning_count(), 0)
        << recipe.name << "\n" << diags.ToText();
  }
}

TEST(SrclintClean, FoldedMobileNetLintsClean) {
  Rng rng(77);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  core::DeployOptions o;
  o.mode = core::ExecutionMode::kFolded;
  o.recipe = core::FoldedMobileNet(fpga::Stratix10SX().key);
  o.board = fpga::Stratix10SX();
  auto d = core::Deployment::Compile(net, o);
  std::vector<const ir::Kernel*> kernels;
  for (const auto& pk : d.kernels()) kernels.push_back(&pk.built.kernel);
  analysis::DiagnosticEngine diags;
  EXPECT_TRUE(LintProgram(d.GeneratedSource(), kernels, diags));
  EXPECT_EQ(diags.error_count(), 0) << diags.ToText();
  EXPECT_EQ(diags.warning_count(), 0) << diags.ToText();
}

// --- The channel-dtype emitter bug, re-detected from source -----------------

/// Builds the minimal int-channel producer/consumer pair: the emitter
/// once printed `channel float` for this regardless of dtype.
std::pair<ir::Kernel, ir::Kernel> IntChannelPair(const ir::BufferPtr& ch) {
  auto in = ir::MakeBuffer("in_data", {ir::IntImm(16)}, ir::MemScope::kGlobal,
                           /*is_arg=*/true, ir::ScalarType::kInt32);
  auto out = ir::MakeBuffer("out_data", {ir::IntImm(16)},
                            ir::MemScope::kGlobal,
                            /*is_arg=*/true, ir::ScalarType::kInt32);
  auto i = ir::MakeVar("i");
  ir::Kernel producer;
  producer.name = "k_int_producer";
  producer.buffer_args = {in};
  producer.channels_written = {ch};
  producer.body =
      ir::For(i, ir::IntImm(0), ir::IntImm(16),
              ir::WriteChannel(ch, ir::Load(in, {ir::VarRef(i)})));
  auto j = ir::MakeVar("j");
  ir::Kernel consumer;
  consumer.name = "k_int_consumer";
  consumer.buffer_args = {out};
  consumer.channels_read = {ch};
  consumer.body = ir::For(j, ir::IntImm(0), ir::IntImm(16),
                          ir::Store(out, {ir::VarRef(j)}, ir::ReadChannel(ch)));
  return {std::move(producer), std::move(consumer)};
}

TEST(SrclintChannelDtype, FixedEmitterLintsCleanAndRevertedBugIsCaught) {
  auto ch = ir::MakeBuffer("ch_int", {}, ir::MemScope::kChannel,
                           /*is_arg=*/false, ir::ScalarType::kInt32);
  ch->channel_depth = 4;
  auto [producer, consumer] = IntChannelPair(ch);
  const std::vector<const ir::Kernel*> kernels = {&producer, &consumer};
  const std::string good = codegen::EmitProgram(kernels);
  ASSERT_NE(good.find("channel int "), std::string::npos) << good;

  analysis::DiagnosticEngine clean;
  EXPECT_TRUE(LintProgram(good, kernels, clean));
  EXPECT_EQ(clean.error_count(), 0) << clean.ToText();

  // Revert the fix textually: the old emitter printed `channel float`
  // for every channel. The validator must reject that emission.
  std::string reverted = good;
  const auto pos = reverted.find("channel int ");
  reverted.replace(pos, std::string("channel int ").size(), "channel float ");
  analysis::DiagnosticEngine diags;
  EXPECT_FALSE(LintProgram(reverted, kernels, diags));
  EXPECT_TRUE(Codes(diags).count("CLF804")) << diags.ToText();
}

}  // namespace
}  // namespace clflow::srclint
