// Property tests for the srclint parser: every source the emitter can
// produce -- across the pipelined ladder, the shipped folded recipes,
// and a DSE candidate sweep -- must (1) parse, (2) survive a
// print -> parse -> print fixpoint, and (3) still validate cleanly
// against its plan after reprinting. Together these prove the AST is a
// faithful reconstruction: nothing the emitter writes is dropped or
// distorted by the parser.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "core/dse.hpp"
#include "nets/nets.hpp"
#include "srclint/parser.hpp"
#include "srclint/srclint.hpp"

namespace clflow::srclint {
namespace {

std::vector<const ir::Kernel*> Planned(const core::Deployment& d) {
  std::vector<const ir::Kernel*> kernels;
  for (const auto& pk : d.kernels()) kernels.push_back(&pk.built.kernel);
  return kernels;
}

/// The round-trip property for one deployment: parse the emission,
/// reprint it canonically, and require (a) the reprint is a fixpoint and
/// (b) the reprint still lints clean against the same plan.
void ExpectRoundTrip(const core::Deployment& d, const std::string& tag) {
  const std::string emitted = d.GeneratedSource();
  SrcProgram parsed;
  ASSERT_NO_THROW(parsed = ParseProgram(emitted)) << tag;

  // Structural sanity: one parsed kernel per planned kernel, same names.
  ASSERT_EQ(parsed.kernels.size(), d.kernels().size()) << tag;
  for (std::size_t i = 0; i < parsed.kernels.size(); ++i) {
    EXPECT_EQ(parsed.kernels[i].name, d.kernels()[i].built.kernel.name)
        << tag;
  }

  const std::string printed = ToSource(parsed);
  SrcProgram reparsed;
  ASSERT_NO_THROW(reparsed = ParseProgram(printed)) << tag;
  EXPECT_EQ(printed, ToSource(reparsed)) << tag << ": printer not a fixpoint";

  analysis::DiagnosticEngine diags;
  EXPECT_TRUE(LintProgram(printed, Planned(d), diags)) << tag;
  EXPECT_EQ(diags.error_count(), 0) << tag << "\n" << diags.ToText();
  EXPECT_EQ(diags.warning_count(), 0) << tag << "\n" << diags.ToText();
}

TEST(SrclintRoundTrip, EveryPipelineRecipeOnEveryBoard) {
  Rng rng(77);
  graph::Graph net = nets::BuildLeNet5(rng);
  for (const auto& board : fpga::EvaluationBoards()) {
    for (const auto& recipe : core::PipelineLadder()) {
      core::DeployOptions o;
      o.mode = core::ExecutionMode::kPipelined;
      o.recipe = recipe;
      o.board = board;
      auto d = core::Deployment::Compile(net, o);
      ExpectRoundTrip(d, board.key + "/" + recipe.name);
    }
  }
}

TEST(SrclintRoundTrip, ShippedFoldedRecipes) {
  Rng rng(77);
  {
    graph::Graph net = nets::BuildMobileNetV1(rng);
    core::DeployOptions o;
    o.mode = core::ExecutionMode::kFolded;
    o.recipe = core::FoldedMobileNet(fpga::Stratix10SX().key);
    o.board = fpga::Stratix10SX();
    ExpectRoundTrip(core::Deployment::Compile(net, o), "folded/mobilenet");
  }
  {
    graph::Graph net = nets::BuildResNet(18, rng);
    core::DeployOptions o;
    o.mode = core::ExecutionMode::kFolded;
    o.recipe = core::FoldedResNet();
    o.board = fpga::Stratix10SX();
    ExpectRoundTrip(core::Deployment::Compile(net, o), "folded/resnet18");
  }
}

TEST(SrclintRoundTrip, DseCandidateSweep) {
  // Every tiling the explorer ranks feasible produces a different
  // parameterized emission; all of them must round-trip. A reduced
  // factor set keeps the sweep fast while still varying all three
  // unroll dimensions.
  Rng rng(77);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  core::DseOptions opts;
  opts.c1_factors = {1, 4};
  opts.w2_factors = {1, 7};
  opts.c2_factors = {1, 8, 16};
  const auto result =
      core::ExploreFoldedTilings(net, fpga::Stratix10SX(), opts);
  ASSERT_FALSE(result.ranked.empty());
  for (std::size_t i = 0; i < result.ranked.size(); ++i) {
    const auto& c = result.ranked[i];
    core::OptimizationRecipe recipe =
        core::FoldedMobileNet(fpga::Stratix10SX().key);
    recipe.conv1x1 = c.conv1x1;
    recipe.conv3x3 = c.conv3x3;
    recipe.conv_dw = c.conv_dw;
    core::DeployOptions o;
    o.mode = core::ExecutionMode::kFolded;
    o.recipe = recipe;
    o.board = fpga::Stratix10SX();
    auto d = core::Deployment::Compile(net, o);
    ExpectRoundTrip(d, "dse candidate " + std::to_string(i));
  }
}

}  // namespace
}  // namespace clflow::srclint
