// Tests for the OpenCL C emitter: the generated source must carry the
// Intel-specific constructs the thesis's listings show.
#include <gtest/gtest.h>

#include "codegen/opencl_codegen.hpp"
#include "ir/op_kernels.hpp"

namespace clflow::codegen {
namespace {

using ::testing::Test;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(EmitExpr, ArithmeticAndIntrinsics) {
  auto i = ir::MakeVar("i");
  EXPECT_EQ(EmitExpr(ir::Add(ir::VarRef(i), ir::IntImm(3))), "(i + 3)");
  EXPECT_EQ(EmitExpr(ir::Max(ir::FloatImm(0.0), ir::FloatImm(1.0))),
            "fmax(0.0f, 1.0f)");
  EXPECT_EQ(EmitExpr(ir::Min(ir::IntImm(2), ir::IntImm(4))), "min(2, 4)");
  EXPECT_EQ(EmitExpr(ir::CallIntrinsic("exp", {ir::FloatImm(1.0)})),
            "exp(1.0f)");
}

TEST(EmitExpr, SelectBecomesTernary) {
  auto i = ir::MakeVar("i");
  auto e = ir::Select(ir::Binary(ir::BinOp::kGe, ir::VarRef(i), ir::IntImm(2)),
                      ir::FloatImm(1.0), ir::FloatImm(0.0));
  EXPECT_EQ(EmitExpr(e), "((i >= 2) ? 1.0f : 0.0f)");
}

TEST(EmitKernel, NaiveConvLooksLikeListing51) {
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 4, .h1 = 8, .w1 = 8, .k = 2, .f = 3, .stride = 1,
       .has_bias = false, .activation = Activation::kRelu},
      {}, "conv2d_base");
  const std::string src = EmitKernel(bk.kernel);
  EXPECT_TRUE(Contains(src, "__kernel void conv2d_base("));
  EXPECT_TRUE(Contains(src, "__global float* restrict scratchpad"));
  EXPECT_TRUE(Contains(src, "__global const float* restrict in_fm"));
  EXPECT_TRUE(Contains(src, "for (int ax1 = 0; ax1 < 2; ++ax1)"));
  // Global accesses are linearized to flat pointers.
  EXPECT_FALSE(Contains(src, "in_fm[rc]["));
  EXPECT_TRUE(Contains(src, "fmax("));  // relu
}

TEST(EmitKernel, UnrolledLoopsGetPragmas) {
  auto bk = ir::BuildConv2dKernel(
      {.c1 = 4, .h1 = 8, .w1 = 8, .k = 2, .f = 3, .stride = 1,
       .has_bias = false},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true,
       .tile_c1 = 2},
      "conv2d_opt");
  const std::string src = EmitKernel(bk.kernel);
  EXPECT_TRUE(Contains(src, "#pragma unroll\n"));
  // The private accumulator is a plain array declaration.
  EXPECT_TRUE(Contains(src, "float conv2d_opt_tmp[1][1];"));
}

TEST(EmitKernel, SymbolicKernelsTakeIntArguments) {
  auto bk = ir::BuildConv2dKernel(
      {.f = 3, .stride = 1, .has_bias = false},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true,
       .symbolic = true},
      "conv2d_sym");
  const std::string src = EmitKernel(bk.kernel);
  EXPECT_TRUE(Contains(src, "int rc_dim"));
  EXPECT_TRUE(Contains(src, "int xx_dim"));
  EXPECT_TRUE(Contains(src, "int ff_dim"));
  EXPECT_TRUE(Contains(src, "int act_sel"));
  EXPECT_TRUE(Contains(src, "int in_fm_s0"));  // symbolic strides
}

TEST(EmitKernel, StridePinningRemovesInnermostStrideArg) {
  auto bk = ir::BuildConv2dKernel(
      {.f = 3, .stride = 1, .has_bias = false},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true,
       .symbolic = true, .pin_strides = true},
      "conv2d_pinned");
  const std::string src = EmitKernel(bk.kernel);
  EXPECT_TRUE(Contains(src, "int in_fm_s0"));
  EXPECT_TRUE(Contains(src, "int in_fm_s1"));
  EXPECT_FALSE(Contains(src, "int in_fm_s2"));  // pinned to 1 (Listing 5.11)
}

TEST(EmitProgram, DeclaresChannelsOnce) {
  auto c0 = ir::MakeBuffer("c0", {ir::IntImm(1)}, ir::MemScope::kChannel);
  c0->channel_depth = 64;
  auto producer = ir::BuildCopyKernel(16, "producer", {.input = nullptr, .output = c0});
  auto consumer = ir::BuildCopyKernel(16, "consumer", {.input = c0, .output = nullptr});
  const std::string src =
      EmitProgram({&producer.kernel, &consumer.kernel});
  EXPECT_TRUE(
      Contains(src, "#pragma OPENCL EXTENSION cl_intel_channels : enable"));
  // Declared exactly once, with its depth attribute.
  const std::string decl = "channel float c0 __attribute__((depth(64)));";
  const auto first = src.find(decl);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(src.find(decl, first + 1), std::string::npos);
  EXPECT_TRUE(Contains(src, "write_channel_intel(c0,"));
  EXPECT_TRUE(Contains(src, "read_channel_intel(c0)"));
}

TEST(EmitProgram, ChannelDeclarationUsesChannelDtype) {
  // Regression: the declaration loop once printed `channel float` for
  // every channel regardless of its dtype, silently reinterpreting
  // integer payloads. srclint re-detects this class from the source
  // (CLF804, see test_srclint.cpp); this pins the emitter itself.
  auto ci = ir::MakeBuffer("ch_i", {ir::IntImm(1)}, ir::MemScope::kChannel,
                           /*is_arg=*/false, ir::ScalarType::kInt32);
  ci->channel_depth = 4;
  auto producer =
      ir::BuildCopyKernel(16, "iprod", {.input = nullptr, .output = ci});
  auto consumer =
      ir::BuildCopyKernel(16, "icons", {.input = ci, .output = nullptr});
  const std::string src = EmitProgram({&producer.kernel, &consumer.kernel});
  EXPECT_TRUE(Contains(src, "channel int ch_i __attribute__((depth(4)));"));
  EXPECT_FALSE(Contains(src, "channel float ch_i"));
}

TEST(EmitProgram, AutorunAttributesEmitted) {
  auto cin = ir::MakeBuffer("ci", {ir::IntImm(1)}, ir::MemScope::kChannel);
  auto cout = ir::MakeBuffer("co", {ir::IntImm(1)}, ir::MemScope::kChannel);
  auto bk = ir::BuildCopyKernel(8, "passthrough",
                                {.input = cin, .output = cout});
  bk.kernel.autorun = true;
  const std::string src = EmitProgram({&bk.kernel});
  EXPECT_TRUE(Contains(src, "__attribute__((max_global_work_dim(0)))"));
  EXPECT_TRUE(Contains(src, "__attribute__((autorun))"));
}

TEST(EmitProgram, NoChannelsNoExtensionPragma) {
  auto bk = ir::BuildCopyKernel(8, "plain");
  const std::string src = EmitProgram({&bk.kernel});
  EXPECT_FALSE(Contains(src, "cl_intel_channels"));
}

TEST(EmitKernel, LocalBuffersDeclaredLocal) {
  auto cin = ir::MakeBuffer("ci", {ir::IntImm(1)}, ir::MemScope::kChannel);
  auto bk = ir::BuildSoftmaxKernel({.n = 16}, /*optimized=*/true, "sm",
                                   {.input = cin});
  const std::string src = EmitKernel(bk.kernel);
  EXPECT_TRUE(Contains(src, "__local float sm_xcache[16];"));
}

TEST(EmitKernel, PadUsesDivModAddressing) {
  auto bk = ir::BuildPadKernel({.c = 2, .h1 = 4, .w1 = 4, .pad = 1}, "pad");
  const std::string src = EmitKernel(bk.kernel);
  EXPECT_TRUE(Contains(src, "/"));
  EXPECT_TRUE(Contains(src, "%"));
  EXPECT_TRUE(Contains(src, "?"));  // select
}

}  // namespace
}  // namespace clflow::codegen
