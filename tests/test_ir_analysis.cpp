// Tests for the AOC-style static analyses: initiation interval, spatial
// parallelism, LSU coalescing/replication, cached-LSU inference, and the
// symbolic-shape coalescing failure + stride-pinning fix of SS5.3.
#include <gtest/gtest.h>

#include <algorithm>

#include "ir/analysis.hpp"
#include "ir/op_kernels.hpp"

namespace clflow::ir {
namespace {

const AccessSite* FindSite(const KernelStats& stats, const std::string& buffer,
                           bool is_store) {
  for (const auto& site : stats.accesses) {
    if (site.buffer == buffer && site.is_store == is_store) return &site;
  }
  return nullptr;
}

KernelStats AnalyzeConv(const ConvSpec& spec, const ConvSchedule& sched,
                        Bindings extra = {}) {
  auto bk = BuildConv2dKernel(spec, sched, "conv_a");
  Bindings b = std::move(extra);
  for (const auto& [name, var] : bk.params) {
    (void)name;
    if (b.find(var.get()) == b.end()) {
      // Bind leftover symbolic params (strides) to plausible values; the
      // *compile-time* analysis must not depend on them.
      b[var.get()] = 1;
    }
  }
  return AnalyzeKernel(bk.kernel, b);
}

TEST(LinearCoeff, AffineBasics) {
  auto i = MakeVar("i");
  auto j = MakeVar("j");
  // 3*i + j + 7 -> coeff(i) = 3, coeff(j) = 1.
  auto e = Add(Add(Mul(IntImm(3), VarRef(i)), VarRef(j)), IntImm(7));
  EXPECT_EQ(LinearCoeff(e, i, {}).value(), 3);
  EXPECT_EQ(LinearCoeff(e, j, {}).value(), 1);
}

TEST(LinearCoeff, SymbolicCoefficientIsUnknown) {
  auto i = MakeVar("i");
  auto n = MakeVar("n", VarKind::kShapeParam);
  auto e = Mul(VarRef(i), VarRef(n));  // stride n unknown at compile time
  EXPECT_FALSE(LinearCoeff(e, i, {}).has_value());
  // ...but known once bound.
  Bindings b{{n.get(), 16}};
  EXPECT_EQ(LinearCoeff(e, i, b).value(), 16);
}

TEST(LinearCoeff, NonAffineIsUnknown) {
  auto i = MakeVar("i");
  EXPECT_FALSE(LinearCoeff(Mul(VarRef(i), VarRef(i)), i, {}).has_value());
  EXPECT_FALSE(LinearCoeff(Mod(VarRef(i), IntImm(4)), i, {}).has_value());
  EXPECT_EQ(LinearCoeff(Mod(IntImm(9), IntImm(4)), i, {}).value(), 0);
}

TEST(EvalConst, FoldsWithBindings) {
  auto n = MakeVar("n", VarKind::kShapeParam);
  auto e = Add(Mul(VarRef(n), IntImm(2)), IntImm(3));
  EXPECT_FALSE(EvalConst(e, {}).has_value());
  Bindings b{{n.get(), 10}};
  EXPECT_EQ(EvalConst(e, b).value(), 23);
}

// --- Initiation interval ------------------------------------------------------

TEST(AnalyzeKernel, NaiveConvHasGlobalReductionII) {
  const auto stats = AnalyzeConv(
      {.c1 = 4, .h1 = 8, .w1 = 8, .k = 8, .f = 3, .stride = 1}, {});
  EXPECT_EQ(stats.worst_ii, kGlobalReductionII);
  EXPECT_TRUE(stats.has_serial_region);
}

TEST(AnalyzeKernel, OptimizedConvAchievesIIOne) {
  const auto stats = AnalyzeConv(
      {.c1 = 4, .h1 = 8, .w1 = 8, .k = 8, .f = 3, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true});
  EXPECT_EQ(stats.worst_ii, 1);
  EXPECT_FALSE(stats.has_serial_region);
}

TEST(AnalyzeKernel, OptimizedConvNeedsFewerCycles) {
  const ConvSpec spec{.c1 = 16, .h1 = 16, .w1 = 16, .k = 16, .f = 3,
                      .stride = 1};
  const auto naive = AnalyzeConv(spec, {});
  const auto opt = AnalyzeConv(spec, {.fuse_activation = true,
                                      .cached_writes = true,
                                      .unroll_filter = true,
                                      .tile_c1 = 4});
  // II 5 -> 1 and 9x fewer trips from the filter unroll, 4x from tiling:
  // expect far more than an order of magnitude.
  EXPECT_GT(naive.compute_cycles / opt.compute_cycles, 20.0);
}

// --- Spatial parallelism / DSP demand ----------------------------------------

TEST(AnalyzeKernel, UnrollMultipliesDspDemand) {
  const ConvSpec spec{.c1 = 8, .h1 = 8, .w1 = 8, .k = 8, .f = 3, .stride = 1};
  const auto base = AnalyzeConv(spec, {.fuse_activation = true,
                                       .cached_writes = true});
  const auto unrolled = AnalyzeConv(spec, {.fuse_activation = true,
                                           .cached_writes = true,
                                           .unroll_filter = true});
  // Filter unroll replicates the MAC 9x.
  EXPECT_EQ(unrolled.fp_mul_spatial, base.fp_mul_spatial * 9);

  const auto tiled = AnalyzeConv(spec, {.fuse_activation = true,
                                        .cached_writes = true,
                                        .unroll_filter = true,
                                        .tile_c1 = 4,
                                        .tile_w2 = 2});
  EXPECT_EQ(tiled.fp_mul_spatial, base.fp_mul_spatial * 9 * 4 * 2);
}

TEST(AnalyzeKernel, SoftmaxCountsComplexOps) {
  auto bk = BuildSoftmaxKernel({.n = 10}, /*optimized=*/true, "sm");
  const auto stats = AnalyzeKernel(bk.kernel);
  // exp + fp division.
  EXPECT_GE(stats.fp_complex_spatial, 2);
}

// --- LSU structure ------------------------------------------------------------

TEST(AnalyzeKernel, ConstantShapeUnrollCoalesces) {
  // Listing 4.2-style behaviour: consecutive accesses across the unrolled
  // dimension widen the LSU instead of replicating it.
  const auto stats = AnalyzeConv(
      {.c1 = 8, .h1 = 10, .w1 = 10, .k = 8, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_w2 = 4});
  const auto* in = FindSite(stats, "in_fm", /*is_store=*/false);
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(in->coalesced);
  EXPECT_EQ(in->width_elems, 4);
  EXPECT_EQ(in->lsu_count, 1);
}

TEST(AnalyzeKernel, ChannelTilingReplicatesInputLsus) {
  // Unrolling along the input-channel dimension cannot coalesce IFM reads
  // (stride H*W), so AOC replicates the LSU (SS5.1.1).
  const auto stats = AnalyzeConv(
      {.c1 = 8, .h1 = 10, .w1 = 10, .k = 8, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_c1 = 4});
  const auto* in = FindSite(stats, "in_fm", /*is_store=*/false);
  ASSERT_NE(in, nullptr);
  EXPECT_FALSE(in->coalesced);
  EXPECT_EQ(in->lsu_count, 4);
  // Weight reads along the same dimension *are* contiguous.
  const auto* w = FindSite(stats, "wt", false);
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->coalesced);
  EXPECT_EQ(w->width_elems, 4);
}

TEST(AnalyzeKernel, SymbolicShapesDefeatCoalescing) {
  // SS5.3: with symbolic strides AOC cannot prove contiguity.
  const ConvSpec spec{.f = 3, .stride = 1};
  const auto unpinned =
      AnalyzeConv(spec,
                  {.fuse_activation = true, .cached_writes = true,
                   .unroll_filter = true, .tile_w2 = 7, .symbolic = true},
                  /*extra=*/{});
  const auto* in_u = FindSite(unpinned, "in_fm", false);
  ASSERT_NE(in_u, nullptr);
  EXPECT_FALSE(in_u->coalesced);
  EXPECT_FALSE(in_u->sequential);

  // Listing 5.11: pinning the innermost stride to 1 restores coalescing.
  const auto pinned =
      AnalyzeConv(spec,
                  {.fuse_activation = true, .cached_writes = true,
                   .unroll_filter = true, .tile_w2 = 7, .symbolic = true,
                   .pin_strides = true},
                  /*extra=*/{});
  const auto* in_p = FindSite(pinned, "in_fm", false);
  ASSERT_NE(in_p, nullptr);
  EXPECT_GE(in_p->width_elems, 7);
  EXPECT_GT(in_p->run_elems, in_u->run_elems);
}

TEST(AnalyzeKernel, PadKernelIsNonSequential) {
  auto bk = BuildPadKernel({.c = 8, .h1 = 14, .w1 = 14, .pad = 1}, "pad_a");
  const auto stats = AnalyzeKernel(bk.kernel);
  const auto* in = FindSite(stats, "in_fm", false);
  ASSERT_NE(in, nullptr);
  // Div/mod addressing: AOC cannot prove streaming order.
  EXPECT_FALSE(in->sequential);
}

TEST(AnalyzeKernel, RepeatedLoadsInferCachedLsu) {
  // The dense input vector is re-read for every output neuron -> cached
  // burst-coalesced LSU (BRAM cost in the board model).
  auto bk = BuildDenseKernel({.c1 = 64, .c2 = 16}, {}, "dense_a");
  const auto stats = AnalyzeKernel(bk.kernel);
  const auto* x = FindSite(stats, "in_vec", false);
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->cached);
  // Weight rows are streamed exactly once -> no cache.
  const auto* w = FindSite(stats, "wt", false);
  ASSERT_NE(w, nullptr);
  EXPECT_FALSE(w->cached);
}

// --- Traffic accounting --------------------------------------------------------

TEST(AnalyzeKernel, TrafficMatchesHandCount) {
  // 1x1 conv, C1=8, K=4, 6x6 output: reads = K*H*W*C1 (input) +
  // K*H*W*C1 (weights) + K (bias); writes = K*H*W.
  const auto stats = AnalyzeConv(
      {.c1 = 8, .h1 = 6, .w1 = 6, .k = 4, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true});
  const double khw = 4 * 6 * 6;
  EXPECT_DOUBLE_EQ(stats.global_bytes_written, khw * 4.0);
  EXPECT_DOUBLE_EQ(stats.global_bytes_read, (khw * 8 * 2 + khw) * 4.0);
}

TEST(AnalyzeKernel, ChannelCountsForPipelinedConv) {
  auto cin = MakeBuffer("cin", {IntImm(1)}, MemScope::kChannel);
  auto cout = MakeBuffer("cout", {IntImm(1)}, MemScope::kChannel);
  auto bk = BuildConv2dKernel(
      {.c1 = 2, .h1 = 6, .w1 = 6, .k = 3, .f = 3, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .unroll_filter = true},
      "conv_chan_a", {.input = cin, .output = cout});
  const auto stats = AnalyzeKernel(bk.kernel);
  EXPECT_DOUBLE_EQ(stats.channel_reads, 2 * 6 * 6);
  EXPECT_DOUBLE_EQ(stats.channel_writes, 3 * 4 * 4);
  // The staged IFM lives in local BRAM.
  EXPECT_EQ(stats.local_elems, 2 * 6 * 6);
}

TEST(AnalyzeKernel, PrivateElemsTrackAccumulatorTile) {
  const auto stats = AnalyzeConv(
      {.c1 = 8, .h1 = 10, .w1 = 10, .k = 8, .f = 1, .stride = 1},
      {.fuse_activation = true, .cached_writes = true, .tile_w2 = 5,
       .tile_c2 = 2});
  EXPECT_EQ(stats.private_elems, 5 * 2);
}

TEST(AnalyzeKernel, SymbolicBindingsScaleDynamicCounts) {
  const ConvSchedule sched{.fuse_activation = true, .cached_writes = true,
                           .unroll_filter = true, .symbolic = true,
                           .pin_strides = true};
  auto bk = BuildConv2dKernel({.f = 3, .stride = 1, .has_bias = false}, sched,
                              "conv_sym_a");
  auto bind = [&](std::int64_t c1, std::int64_t hw, std::int64_t k) {
    Bindings b;
    b[bk.params.at("C1").get()] = c1;
    b[bk.params.at("HW").get()] = hw;
    b[bk.params.at("K").get()] = k;
    for (const auto& [name, var] : bk.params) {
      if (name.find("_s") != std::string::npos) b[var.get()] = 1;
    }
    return AnalyzeKernel(bk.kernel, b);
  };
  const auto small = bind(4, 8, 4);
  const auto large = bind(8, 8, 8);
  EXPECT_GT(large.compute_cycles, 2.5 * small.compute_cycles);
  EXPECT_GT(large.global_bytes_read, 3.0 * small.global_bytes_read);
  // Hardware structure (spatial ops) is identical: same bitstream.
  EXPECT_EQ(large.fp_mul_spatial, small.fp_mul_spatial);
}

}  // namespace
}  // namespace clflow::ir
