// Tests for the common substrate: tables, parallel-for, errors, arenas.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

namespace clflow {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"A", "LongHeader"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("| A      |"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
  EXPECT_EQ(Table::Speedup(4.567), "4.57x");
  EXPECT_EQ(Table::Pct(0.37), "37%");
  EXPECT_EQ(Table::Pct(0.375, 1), "37.5%");
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  constexpr int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, 8, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  ParallelFor(0, 5, 1, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](std::int64_t) { ++calls; });
  ParallelFor(7, 3, 4, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(ParallelFor(0, 100, 4,
                           [](std::int64_t i) {
                             if (i == 57) throw Error("boom");
                           }),
               Error);
}

TEST(ParallelChunks, ChunksPartitionTheRange) {
  std::atomic<std::int64_t> total{0};
  ParallelChunks(0, 1003, 7, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 1003);
}

TEST(ParallelStats, InlineExecutionHasNoImbalance) {
  ParallelStats stats;
  ParallelFor(
      0, 100, 1, [](std::int64_t) {}, &stats);
  EXPECT_EQ(stats.workers, 1);
  EXPECT_DOUBLE_EQ(stats.imbalance_wait_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.wall_us, stats.busy_us);
}

TEST(ParallelStats, SkewedChunksShowImbalanceWait) {
  // Static chunking puts all the work in the first chunk: the other
  // workers finish instantly and wait for the straggler.
  ParallelStats stats;
  ParallelChunks(
      0, 4, 4,
      [](std::int64_t lo, std::int64_t) {
        if (lo == 0) {
          volatile double sink = 0;
          for (int i = 0; i < 2000000; ++i) sink += i;
        }
      },
      &stats);
  EXPECT_EQ(stats.workers, 4);
  EXPECT_GT(stats.wall_us, 0.0);
  EXPECT_GT(stats.imbalance_wait_us, 0.0);
  // Each call overwrites rather than accumulates; += merges manually.
  ParallelStats merged = stats;
  merged += stats;
  EXPECT_DOUBLE_EQ(merged.wall_us, 2 * stats.wall_us);
  ParallelFor(
      0, 2, 2, [](std::int64_t) {}, &stats);
  EXPECT_EQ(stats.workers, 2);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1); }

TEST(Arena, BumpAllocatesAlignedWithinOneBlock) {
  common::Arena arena(1024);
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  // 3 bytes, then padding to the next 8-byte boundary, then 8 bytes.
  EXPECT_EQ(arena.bytes_used(), 11u);
  EXPECT_EQ(arena.num_allocations(), 2u);
  EXPECT_EQ(arena.num_blocks(), 1u);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  common::Arena arena(64);
  void* big = arena.Allocate(1000, 8);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
  // The big block is current; a small follow-up that does not fit its
  // remainder opens another block rather than scribbling out of bounds.
  for (int i = 0; i < 100; ++i) (void)arena.Allocate(64, 8);
  EXPECT_GE(arena.num_blocks(), 2u);
}

TEST(Arena, ResetKeepsFirstBlockDropsRest) {
  common::Arena arena(256);
  for (int i = 0; i < 50; ++i) (void)arena.Allocate(64, 8);
  ASSERT_GT(arena.num_blocks(), 1u);
  arena.Reset();
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.num_allocations(), 0u);
  // The retained block is reusable after the rewind.
  void* p = arena.Allocate(16, 8);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(arena.bytes_used(), 16u);
}

TEST(ArenaScope, MakeArenaSharedUsesScopedArenaAndOutlivesIt) {
  std::shared_ptr<int> survivor;
  auto arena = std::make_shared<common::Arena>();
  {
    common::ArenaScope scope(arena);
    ASSERT_NE(common::ArenaScope::Current(), nullptr);
    survivor = common::MakeArenaShared<int>(42);
    EXPECT_GT(arena->bytes_used(), 0u);
  }
  // Scope gone, arena reference dropped below: the allocate_shared
  // control block's allocator copy must keep the storage alive.
  std::weak_ptr<common::Arena> watch = arena;
  arena.reset();
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(*survivor, 42);
  survivor.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(ArenaScope, NestsAndFallsBackToHeapOutside) {
  EXPECT_EQ(common::ArenaScope::Current(), nullptr);
  auto outer = std::make_shared<common::Arena>();
  auto inner = std::make_shared<common::Arena>();
  {
    common::ArenaScope a(outer);
    EXPECT_EQ(common::ArenaScope::Current()->get(), outer.get());
    {
      common::ArenaScope b(inner);
      EXPECT_EQ(common::ArenaScope::Current()->get(), inner.get());
    }
    EXPECT_EQ(common::ArenaScope::Current()->get(), outer.get());
  }
  EXPECT_EQ(common::ArenaScope::Current(), nullptr);
  // Outside any scope MakeArenaShared is plain make_shared.
  auto p = common::MakeArenaShared<int>(7);
  EXPECT_EQ(*p, 7);
  EXPECT_EQ(outer->bytes_used(), 0u);
}

TEST(StringInterner, DeduplicatesAndPrecomputesHash) {
  common::StringInterner pool;
  const std::string a = "k_conv_c32f64k3s1p1_b1_a1_node4";
  const std::string b = a;  // distinct buffer, equal bytes
  const auto ia = pool.Intern(a);
  const auto ib = pool.Intern(b);
  EXPECT_EQ(ia.view.data(), ib.view.data());  // one stable copy
  EXPECT_NE(ia.view.data(), a.data());        // owned by the pool
  EXPECT_EQ(ia.hash, common::FnvHash(a));
  EXPECT_EQ(ib.hash, ia.hash);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.payload_bytes(), a.size());

  const auto ic = pool.Intern("something else");
  EXPECT_NE(ic.view.data(), ia.view.data());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringInterner, ViewsStableAcrossGrowth) {
  common::StringInterner pool(64);  // tiny blocks force arena growth
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 200; ++i) {
    originals.push_back("label_with_some_length_" + std::to_string(i));
  }
  views.reserve(originals.size());
  for (const auto& s : originals) views.push_back(pool.Intern(s).view);
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]);
    // Re-interning never moves the copy.
    EXPECT_EQ(pool.Intern(originals[i]).view.data(), views[i].data());
  }
  EXPECT_EQ(pool.size(), originals.size());
}

TEST(Check, ThrowsWithLocation) {
  try {
    CLFLOW_CHECK_MSG(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    EXPECT_NE(what.find("context message"), std::string::npos);
  }
}

}  // namespace
}  // namespace clflow
