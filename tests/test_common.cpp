// Tests for the common substrate: tables, parallel-for, errors.
#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"

namespace clflow {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"A", "LongHeader"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("| A      |"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"A", "B"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
  EXPECT_EQ(Table::Speedup(4.567), "4.57x");
  EXPECT_EQ(Table::Pct(0.37), "37%");
  EXPECT_EQ(Table::Pct(0.375, 1), "37.5%");
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  constexpr int n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, 8, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  ParallelFor(0, 5, 1, [&](std::int64_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  ParallelFor(5, 5, 4, [&](std::int64_t) { ++calls; });
  ParallelFor(7, 3, 4, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(ParallelFor(0, 100, 4,
                           [](std::int64_t i) {
                             if (i == 57) throw Error("boom");
                           }),
               Error);
}

TEST(ParallelChunks, ChunksPartitionTheRange) {
  std::atomic<std::int64_t> total{0};
  ParallelChunks(0, 1003, 7, [&](std::int64_t lo, std::int64_t hi) {
    total.fetch_add(hi - lo);
  });
  EXPECT_EQ(total.load(), 1003);
}

TEST(ParallelStats, InlineExecutionHasNoImbalance) {
  ParallelStats stats;
  ParallelFor(
      0, 100, 1, [](std::int64_t) {}, &stats);
  EXPECT_EQ(stats.workers, 1);
  EXPECT_DOUBLE_EQ(stats.imbalance_wait_us, 0.0);
  EXPECT_DOUBLE_EQ(stats.wall_us, stats.busy_us);
}

TEST(ParallelStats, SkewedChunksShowImbalanceWait) {
  // Static chunking puts all the work in the first chunk: the other
  // workers finish instantly and wait for the straggler.
  ParallelStats stats;
  ParallelChunks(
      0, 4, 4,
      [](std::int64_t lo, std::int64_t) {
        if (lo == 0) {
          volatile double sink = 0;
          for (int i = 0; i < 2000000; ++i) sink += i;
        }
      },
      &stats);
  EXPECT_EQ(stats.workers, 4);
  EXPECT_GT(stats.wall_us, 0.0);
  EXPECT_GT(stats.imbalance_wait_us, 0.0);
  // Each call overwrites rather than accumulates; += merges manually.
  ParallelStats merged = stats;
  merged += stats;
  EXPECT_DOUBLE_EQ(merged.wall_us, 2 * stats.wall_us);
  ParallelFor(
      0, 2, 2, [](std::int64_t) {}, &stats);
  EXPECT_EQ(stats.workers, 2);
}

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1); }

TEST(Check, ThrowsWithLocation) {
  try {
    CLFLOW_CHECK_MSG(false, "context message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
    EXPECT_NE(what.find("context message"), std::string::npos);
  }
}

}  // namespace
}  // namespace clflow
