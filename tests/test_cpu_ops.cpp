// Unit tests for the reference CPU operators (the functional oracle).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "cpu/ops.hpp"

namespace clflow::cpu {
namespace {

TEST(Conv2d, MatchesHandComputedExample) {
  // Single 2x2 filter over a 3x3 input, stride 1, no pad.
  auto input = Tensor::FromData(Shape{1, 1, 3, 3},
                                {1, 2, 3,
                                 4, 5, 6,
                                 7, 8, 9});
  auto w = Tensor::FromData(Shape{1, 1, 2, 2}, {1, 0, 0, 1});
  auto out = Conv2d(input, w, Tensor(), {.stride = 1, .pad = 0});
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1 + 5);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 2 + 6);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 0), 4 + 8);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 5 + 9);
}

TEST(Conv2d, Figure21Example) {
  // The thesis' Figure 2.1: 2-filter 3x3 conv on a 5x5 input -> 2x3x3.
  Rng rng(42);
  auto input = Tensor::Random(Shape{1, 1, 5, 5}, rng);
  auto w = Tensor::Random(Shape{2, 1, 3, 3}, rng);
  auto out = Conv2d(input, w, Tensor(), {});
  ASSERT_EQ(out.shape(), (Shape{1, 2, 3, 3}));
  // Check y(0,0) = sum_{m,n} I(m,n) W(m,n) for filter 0 (Equation 2.1).
  float expected = 0.0f;
  for (int m = 0; m < 3; ++m)
    for (int n = 0; n < 3; ++n)
      expected += input.at4(0, 0, m, n) * w.at4(0, 0, m, n);
  EXPECT_NEAR(out.at4(0, 0, 0, 0), expected, 1e-5f);
}

TEST(Conv2d, StrideReducesOutput) {
  Rng rng(1);
  auto input = Tensor::Random(Shape{1, 3, 8, 8}, rng);
  auto w = Tensor::Random(Shape{4, 3, 3, 3}, rng);
  auto out = Conv2d(input, w, Tensor(), {.stride = 2, .pad = 1});
  EXPECT_EQ(out.shape(), (Shape{1, 4, 4, 4}));
}

TEST(Conv2d, PaddingContributesZeros) {
  auto input = Tensor::Full(Shape{1, 1, 2, 2}, 1.0f);
  auto w = Tensor::Full(Shape{1, 1, 3, 3}, 1.0f);
  auto out = Conv2d(input, w, Tensor(), {.stride = 1, .pad = 1});
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  // Each output sees exactly the 4 ones of the input.
  for (std::int64_t i = 0; i < out.size(); ++i)
    EXPECT_FLOAT_EQ(out.at(i), 4.0f);
}

TEST(Conv2d, BiasAndReluApplied) {
  auto input = Tensor::Full(Shape{1, 1, 2, 2}, 1.0f);
  auto w = Tensor::Full(Shape{2, 1, 1, 1}, -1.0f);
  auto bias = Tensor::FromData(Shape{2}, {0.5f, 2.0f});
  auto out = Conv2d(input, w, bias,
                    {.stride = 1, .pad = 0, .activation = Activation::kRelu});
  // Channel 0: -1 + 0.5 = -0.5 -> relu 0. Channel 1: -1 + 2 = 1.
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 1.0f);
}

TEST(Conv2d, ThreadCountDoesNotChangeResult) {
  Rng rng(9);
  auto input = Tensor::Random(Shape{1, 8, 14, 14}, rng);
  auto w = Tensor::Random(Shape{16, 8, 3, 3}, rng);
  auto bias = Tensor::Random(Shape{16}, rng);
  const Conv2dParams p{.stride = 1, .pad = 1,
                       .activation = Activation::kRelu};
  auto seq = Conv2d(input, w, bias, p, 1);
  auto par = Conv2d(input, w, bias, p, 8);
  EXPECT_EQ(Tensor::MaxAbsDiff(seq, par), 0.0f);
}

TEST(Conv2d, ShapeMismatchThrows) {
  Rng rng(2);
  auto input = Tensor::Random(Shape{1, 3, 8, 8}, rng);
  auto w = Tensor::Random(Shape{4, 2, 3, 3}, rng);  // wrong C1
  EXPECT_THROW((void)Conv2d(input, w, Tensor(), {}), ShapeError);
  auto wb = Tensor::Random(Shape{4, 3, 3, 3}, rng);
  auto bad_bias = Tensor::Random(Shape{5}, rng);
  EXPECT_THROW((void)Conv2d(input, wb, bad_bias, {}), ShapeError);
}

TEST(DepthwiseConv2d, FiltersActPerChannel) {
  // Channel 0 filter = identity-ish, channel 1 filter = x2.
  auto input = Tensor::FromData(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  auto w = Tensor::FromData(Shape{2, 1, 1, 1}, {1.0f, 2.0f});
  auto out = DepthwiseConv2d(input, w, Tensor(), {});
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 4.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 1, 1), 16.0f);
}

TEST(DepthwiseConv2d, MatchesGroupedDirectConv) {
  // A depthwise conv equals C independent 1-channel convs.
  Rng rng(3);
  auto input = Tensor::Random(Shape{1, 4, 6, 6}, rng);
  auto w = Tensor::Random(Shape{4, 1, 3, 3}, rng);
  auto out = DepthwiseConv2d(input, w, Tensor(), {.stride = 1, .pad = 1});
  for (int c = 0; c < 4; ++c) {
    Tensor one_in(Shape{1, 1, 6, 6});
    Tensor one_w(Shape{1, 1, 3, 3});
    for (int h = 0; h < 6; ++h)
      for (int x = 0; x < 6; ++x)
        one_in.at4(0, 0, h, x) = input.at4(0, c, h, x);
    for (int fy = 0; fy < 3; ++fy)
      for (int fx = 0; fx < 3; ++fx)
        one_w.at4(0, 0, fy, fx) = w.at4(c, 0, fy, fx);
    auto ref = Conv2d(one_in, one_w, Tensor(), {.stride = 1, .pad = 1});
    for (int h = 0; h < 6; ++h)
      for (int x = 0; x < 6; ++x)
        EXPECT_NEAR(out.at4(0, c, h, x), ref.at4(0, 0, h, x), 1e-5f);
  }
}

TEST(Dense, MatrixVectorWithBias) {
  auto x = Tensor::FromData(Shape{1, 3}, {1, 2, 3});
  auto w = Tensor::FromData(Shape{2, 3}, {1, 0, 0, 0, 1, 1});
  auto bias = Tensor::FromData(Shape{2}, {10, 20});
  auto y = Dense(x, w, bias, Activation::kNone);
  EXPECT_FLOAT_EQ(y.at(0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(1), 25.0f);
}

TEST(Dense, FlattensInputImplicitly) {
  Rng rng(4);
  auto x4 = Tensor::Random(Shape{1, 2, 2, 2}, rng);
  auto w = Tensor::Random(Shape{3, 8}, rng);
  auto y1 = Dense(x4, w, Tensor(), Activation::kNone);
  auto y2 = Dense(x4.Reshaped(Shape{1, 8}), w, Tensor(), Activation::kNone);
  EXPECT_EQ(Tensor::MaxAbsDiff(y1, y2), 0.0f);
}

TEST(Dense, ThreadInvariance) {
  Rng rng(5);
  auto x = Tensor::Random(Shape{1, 400}, rng);
  auto w = Tensor::Random(Shape{120, 400}, rng);
  auto b = Tensor::Random(Shape{120}, rng);
  auto seq = Dense(x, w, b, Activation::kRelu, 1);
  auto par = Dense(x, w, b, Activation::kRelu, 8);
  EXPECT_EQ(Tensor::MaxAbsDiff(seq, par), 0.0f);
}

TEST(MaxPool2d, TakesWindowMaximum) {
  auto input = Tensor::FromData(Shape{1, 1, 4, 4},
                                {1, 2, 5, 6,
                                 3, 4, 7, 8,
                                 -1, -2, 0, 0,
                                 -3, -4, 0, 9});
  auto out = MaxPool2d(input, {.window = 2, .stride = 2});
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 0), -1.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);
}

TEST(AvgPool2d, GlobalPoolAverages) {
  auto input = Tensor::Iota(Shape{1, 2, 2, 2});  // ch0: 0..3, ch1: 4..7
  auto out = AvgPool2d(input, {.window = 2, .stride = 1});
  ASSERT_EQ(out.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 5.5f);
}

TEST(Pad2d, InsertsZeroBorder) {
  auto input = Tensor::Full(Shape{1, 1, 2, 2}, 3.0f);
  auto out = Pad2d(input, 1);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 3.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 3, 3), 0.0f);
  // pad = 0 is the identity.
  EXPECT_EQ(Tensor::MaxAbsDiff(Pad2d(input, 0), input), 0.0f);
}

TEST(Activate, Relu6ClampsBothSides) {
  auto x = Tensor::FromData(Shape{4}, {-2.0f, 0.5f, 6.0f, 9.0f});
  auto y = Activate(x, Activation::kRelu6);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.5f);
  EXPECT_FLOAT_EQ(y.at(2), 6.0f);
  EXPECT_FLOAT_EQ(y.at(3), 6.0f);
}

TEST(Add, ResidualSumWithRelu) {
  auto a = Tensor::FromData(Shape{3}, {1, -5, 2});
  auto b = Tensor::FromData(Shape{3}, {1, 2, -3});
  auto y = Add(a, b, Activation::kRelu);
  EXPECT_FLOAT_EQ(y.at(0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(2), 0.0f);
  EXPECT_THROW((void)Add(a, Tensor::Full(Shape{4}, 0.0f)), ShapeError);
}

TEST(Softmax, SumsToOneAndOrdersPreserved) {
  auto x = Tensor::FromData(Shape{4}, {1.0f, 3.0f, 2.0f, -1.0f});
  auto y = Softmax(x);
  float sum = 0;
  for (float v : y.data()) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(y.at(1), y.at(2));
  EXPECT_GT(y.at(2), y.at(0));
  EXPECT_GT(y.at(0), y.at(3));
}

TEST(Softmax, StableUnderLargeInputs) {
  // Without max subtraction exp(1000) would overflow to inf.
  auto x = Tensor::FromData(Shape{3}, {1000.0f, 1001.0f, 999.0f});
  auto y = Softmax(x);
  for (float v : y.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_GT(y.at(1), y.at(0));
}

TEST(FoldBatchNorm, EquivalentToExplicitBn) {
  Rng rng(6);
  auto input = Tensor::Random(Shape{1, 3, 5, 5}, rng);
  auto w = Tensor::Random(Shape{4, 3, 3, 3}, rng);
  auto bias = Tensor::Random(Shape{4}, rng);
  auto gamma = Tensor::Random(Shape{4}, rng, 0.5f, 1.5f);
  auto beta = Tensor::Random(Shape{4}, rng);
  auto mean = Tensor::Random(Shape{4}, rng);
  auto variance = Tensor::Random(Shape{4}, rng, 0.25f, 2.0f);

  auto folded = FoldBatchNorm(w, bias, gamma, beta, mean, variance);
  auto fused = Conv2d(input, folded.weights, folded.bias, {.pad = 1});

  // Reference: conv then explicit batch norm.
  auto raw = Conv2d(input, w, bias, {.pad = 1});
  Tensor expect(raw.shape());
  for (int c = 0; c < 4; ++c) {
    const float scale =
        gamma.at(c) / std::sqrt(variance.at(c) + 1e-5f);
    for (int h = 0; h < 5; ++h)
      for (int x = 0; x < 5; ++x)
        expect.at4(0, c, h, x) =
            (raw.at4(0, c, h, x) - mean.at(c)) * scale + beta.at(c);
  }
  EXPECT_LT(Tensor::MaxRelDiff(fused, expect, 1e-3f), 1e-3f);
}

// ---- SIMD vs scalar bit-exactness -------------------------------------
//
// The vectorized Conv2d/DepthwiseConv2d/Dense entry points promise
// *bitwise* identical results to the exported *Scalar oracles: each SIMD
// lane accumulates one output in the same floating-point order as the
// scalar loop. The sweep crosses shapes chosen so output widths hit
// full 8-lane tiles, partial tails (<8), and single-lane edges, with
// every stride/pad/activation combination the runtime uses.

void ExpectBitwiseEqual(const Tensor& simd, const Tensor& scalar,
                        const std::string& what) {
  ASSERT_EQ(simd.shape(), scalar.shape()) << what;
  const auto a = simd.data();
  const auto b = scalar.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool same =
        std::memcmp(&a[i], &b[i], sizeof(float)) == 0;
    ASSERT_TRUE(same) << what << ": element " << i << " simd=" << a[i]
                      << " scalar=" << b[i];
  }
}

TEST(SimdBitExact, Conv2dSweep) {
  Rng rng(91);
  for (const int w1 : {5, 8, 9, 16, 23}) {  // tails of 0..7 lanes
    for (const int stride : {1, 2}) {
      for (const int pad : {0, 1}) {
        for (const auto act : {Activation::kNone, Activation::kRelu,
                               Activation::kRelu6}) {
          if (w1 + 2 * pad < 3) continue;
          auto input = Tensor::Random(Shape{1, 3, w1, w1}, rng, -2.0f, 2.0f);
          auto w = Tensor::Random(Shape{4, 3, 3, 3}, rng, -1.0f, 1.0f);
          auto bias = Tensor::Random(Shape{4}, rng);
          const Conv2dParams p{.stride = stride, .pad = pad,
                               .activation = act};
          ExpectBitwiseEqual(
              Conv2d(input, w, bias, p), Conv2dScalar(input, w, bias, p),
              "conv w1=" + std::to_string(w1) + " s=" +
                  std::to_string(stride) + " p=" + std::to_string(pad));
        }
      }
    }
  }
}

TEST(SimdBitExact, Conv2d1x1AndNoBias) {
  Rng rng(92);
  auto input = Tensor::Random(Shape{1, 8, 10, 10}, rng, -2.0f, 2.0f);
  auto w = Tensor::Random(Shape{16, 8, 1, 1}, rng, -1.0f, 1.0f);
  ExpectBitwiseEqual(Conv2d(input, w, Tensor(), {}),
                     Conv2dScalar(input, w, Tensor(), {}), "conv1x1");
}

TEST(SimdBitExact, DepthwiseSweep) {
  Rng rng(93);
  for (const int w1 : {7, 8, 15}) {
    for (const int stride : {1, 2}) {
      auto input = Tensor::Random(Shape{1, 6, w1, w1}, rng, -2.0f, 2.0f);
      auto w = Tensor::Random(Shape{6, 1, 3, 3}, rng, -1.0f, 1.0f);
      auto bias = Tensor::Random(Shape{6}, rng);
      const Conv2dParams p{.stride = stride, .pad = 1,
                           .activation = Activation::kRelu};
      ExpectBitwiseEqual(
          DepthwiseConv2d(input, w, bias, p),
          DepthwiseConv2dScalar(input, w, bias, p),
          "dw w1=" + std::to_string(w1) + " s=" + std::to_string(stride));
    }
  }
}

TEST(SimdBitExact, DenseSweep) {
  Rng rng(94);
  for (const int c2 : {1, 7, 8, 9, 64, 1000}) {  // tail blocks of every size
    auto x = Tensor::Random(Shape{1, 96}, rng, -2.0f, 2.0f);
    auto w = Tensor::Random(Shape{c2, 96}, rng, -1.0f, 1.0f);
    auto b = Tensor::Random(Shape{c2}, rng);
    for (const auto act : {Activation::kNone, Activation::kRelu}) {
      ExpectBitwiseEqual(Dense(x, w, b, act), DenseScalar(x, w, b, act),
                         "dense c2=" + std::to_string(c2));
    }
    // No-bias path.
    ExpectBitwiseEqual(Dense(x, w, Tensor(), Activation::kNone),
                       DenseScalar(x, w, Tensor(), Activation::kNone),
                       "dense nobias c2=" + std::to_string(c2));
  }
}

TEST(SimdBitExact, ThreadCountDoesNotChangeSimdResult) {
  Rng rng(95);
  auto input = Tensor::Random(Shape{1, 8, 23, 23}, rng, -2.0f, 2.0f);
  auto w = Tensor::Random(Shape{8, 8, 3, 3}, rng, -1.0f, 1.0f);
  const Conv2dParams p{.stride = 1, .pad = 1};
  ExpectBitwiseEqual(Conv2d(input, w, Tensor(), p, 4),
                     Conv2d(input, w, Tensor(), p, 1), "conv threads");
}

}  // namespace
}  // namespace clflow::cpu
