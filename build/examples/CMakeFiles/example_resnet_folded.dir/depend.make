# Empty dependencies file for example_resnet_folded.
# This may be replaced when dependencies are built.
