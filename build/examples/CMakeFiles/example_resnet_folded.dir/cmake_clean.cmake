file(REMOVE_RECURSE
  "CMakeFiles/example_resnet_folded.dir/resnet_folded.cpp.o"
  "CMakeFiles/example_resnet_folded.dir/resnet_folded.cpp.o.d"
  "example_resnet_folded"
  "example_resnet_folded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_resnet_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
