file(REMOVE_RECURSE
  "CMakeFiles/example_custom_operator.dir/custom_operator.cpp.o"
  "CMakeFiles/example_custom_operator.dir/custom_operator.cpp.o.d"
  "example_custom_operator"
  "example_custom_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
