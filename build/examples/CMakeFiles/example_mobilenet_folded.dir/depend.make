# Empty dependencies file for example_mobilenet_folded.
# This may be replaced when dependencies are built.
