file(REMOVE_RECURSE
  "CMakeFiles/example_mobilenet_folded.dir/mobilenet_folded.cpp.o"
  "CMakeFiles/example_mobilenet_folded.dir/mobilenet_folded.cpp.o.d"
  "example_mobilenet_folded"
  "example_mobilenet_folded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mobilenet_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
