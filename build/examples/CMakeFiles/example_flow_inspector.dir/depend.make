# Empty dependencies file for example_flow_inspector.
# This may be replaced when dependencies are built.
