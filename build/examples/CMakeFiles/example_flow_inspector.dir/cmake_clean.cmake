file(REMOVE_RECURSE
  "CMakeFiles/example_flow_inspector.dir/flow_inspector.cpp.o"
  "CMakeFiles/example_flow_inspector.dir/flow_inspector.cpp.o.d"
  "example_flow_inspector"
  "example_flow_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flow_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
