file(REMOVE_RECURSE
  "libclflow_cpu.a"
)
