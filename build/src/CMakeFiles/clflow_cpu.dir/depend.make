# Empty dependencies file for clflow_cpu.
# This may be replaced when dependencies are built.
