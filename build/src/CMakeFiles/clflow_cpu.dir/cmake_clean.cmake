file(REMOVE_RECURSE
  "CMakeFiles/clflow_cpu.dir/cpu/ops.cpp.o"
  "CMakeFiles/clflow_cpu.dir/cpu/ops.cpp.o.d"
  "libclflow_cpu.a"
  "libclflow_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
