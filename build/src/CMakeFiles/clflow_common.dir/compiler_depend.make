# Empty compiler generated dependencies file for clflow_common.
# This may be replaced when dependencies are built.
