file(REMOVE_RECURSE
  "CMakeFiles/clflow_common.dir/common/error.cpp.o"
  "CMakeFiles/clflow_common.dir/common/error.cpp.o.d"
  "CMakeFiles/clflow_common.dir/common/parallel.cpp.o"
  "CMakeFiles/clflow_common.dir/common/parallel.cpp.o.d"
  "CMakeFiles/clflow_common.dir/common/table.cpp.o"
  "CMakeFiles/clflow_common.dir/common/table.cpp.o.d"
  "libclflow_common.a"
  "libclflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
