file(REMOVE_RECURSE
  "libclflow_common.a"
)
