file(REMOVE_RECURSE
  "libclflow_graph.a"
)
