# Empty dependencies file for clflow_graph.
# This may be replaced when dependencies are built.
