file(REMOVE_RECURSE
  "CMakeFiles/clflow_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/clflow_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/clflow_graph.dir/graph/params_io.cpp.o"
  "CMakeFiles/clflow_graph.dir/graph/params_io.cpp.o.d"
  "libclflow_graph.a"
  "libclflow_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
