file(REMOVE_RECURSE
  "libclflow_codegen.a"
)
