file(REMOVE_RECURSE
  "CMakeFiles/clflow_codegen.dir/codegen/opencl_codegen.cpp.o"
  "CMakeFiles/clflow_codegen.dir/codegen/opencl_codegen.cpp.o.d"
  "libclflow_codegen.a"
  "libclflow_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
