# Empty compiler generated dependencies file for clflow_codegen.
# This may be replaced when dependencies are built.
