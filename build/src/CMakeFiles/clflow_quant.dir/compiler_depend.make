# Empty compiler generated dependencies file for clflow_quant.
# This may be replaced when dependencies are built.
