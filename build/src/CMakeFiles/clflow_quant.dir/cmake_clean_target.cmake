file(REMOVE_RECURSE
  "libclflow_quant.a"
)
