file(REMOVE_RECURSE
  "CMakeFiles/clflow_quant.dir/quant/quantize.cpp.o"
  "CMakeFiles/clflow_quant.dir/quant/quantize.cpp.o.d"
  "libclflow_quant.a"
  "libclflow_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
