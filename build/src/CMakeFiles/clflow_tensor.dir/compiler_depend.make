# Empty compiler generated dependencies file for clflow_tensor.
# This may be replaced when dependencies are built.
