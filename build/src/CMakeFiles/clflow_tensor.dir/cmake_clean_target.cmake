file(REMOVE_RECURSE
  "libclflow_tensor.a"
)
