file(REMOVE_RECURSE
  "CMakeFiles/clflow_tensor.dir/tensor/shape.cpp.o"
  "CMakeFiles/clflow_tensor.dir/tensor/shape.cpp.o.d"
  "CMakeFiles/clflow_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/clflow_tensor.dir/tensor/tensor.cpp.o.d"
  "libclflow_tensor.a"
  "libclflow_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
