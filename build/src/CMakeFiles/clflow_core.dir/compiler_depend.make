# Empty compiler generated dependencies file for clflow_core.
# This may be replaced when dependencies are built.
