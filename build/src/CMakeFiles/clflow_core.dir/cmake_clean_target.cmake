file(REMOVE_RECURSE
  "libclflow_core.a"
)
