file(REMOVE_RECURSE
  "CMakeFiles/clflow_core.dir/core/deployment.cpp.o"
  "CMakeFiles/clflow_core.dir/core/deployment.cpp.o.d"
  "CMakeFiles/clflow_core.dir/core/dse.cpp.o"
  "CMakeFiles/clflow_core.dir/core/dse.cpp.o.d"
  "CMakeFiles/clflow_core.dir/core/host_codegen.cpp.o"
  "CMakeFiles/clflow_core.dir/core/host_codegen.cpp.o.d"
  "CMakeFiles/clflow_core.dir/core/recipes.cpp.o"
  "CMakeFiles/clflow_core.dir/core/recipes.cpp.o.d"
  "libclflow_core.a"
  "libclflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
