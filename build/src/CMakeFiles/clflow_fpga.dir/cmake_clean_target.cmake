file(REMOVE_RECURSE
  "libclflow_fpga.a"
)
