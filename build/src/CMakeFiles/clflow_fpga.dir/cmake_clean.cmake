file(REMOVE_RECURSE
  "CMakeFiles/clflow_fpga.dir/fpga/board.cpp.o"
  "CMakeFiles/clflow_fpga.dir/fpga/board.cpp.o.d"
  "CMakeFiles/clflow_fpga.dir/fpga/report.cpp.o"
  "CMakeFiles/clflow_fpga.dir/fpga/report.cpp.o.d"
  "CMakeFiles/clflow_fpga.dir/fpga/synth.cpp.o"
  "CMakeFiles/clflow_fpga.dir/fpga/synth.cpp.o.d"
  "libclflow_fpga.a"
  "libclflow_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
