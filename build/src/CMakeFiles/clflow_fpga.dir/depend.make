# Empty dependencies file for clflow_fpga.
# This may be replaced when dependencies are built.
