
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cpp" "src/CMakeFiles/clflow_ir.dir/ir/analysis.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/analysis.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/clflow_ir.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/CMakeFiles/clflow_ir.dir/ir/interp.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/interp.cpp.o.d"
  "/root/repo/src/ir/op_kernels.cpp" "src/CMakeFiles/clflow_ir.dir/ir/op_kernels.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/op_kernels.cpp.o.d"
  "/root/repo/src/ir/passes.cpp" "src/CMakeFiles/clflow_ir.dir/ir/passes.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/passes.cpp.o.d"
  "/root/repo/src/ir/placeholder_ir.cpp" "src/CMakeFiles/clflow_ir.dir/ir/placeholder_ir.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/placeholder_ir.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/clflow_ir.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/clflow_ir.dir/ir/stmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
