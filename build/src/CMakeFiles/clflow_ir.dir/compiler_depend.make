# Empty compiler generated dependencies file for clflow_ir.
# This may be replaced when dependencies are built.
