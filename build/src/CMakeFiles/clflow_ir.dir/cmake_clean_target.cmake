file(REMOVE_RECURSE
  "libclflow_ir.a"
)
