src/CMakeFiles/clflow_ir.dir/ir/placeholder_ir.cpp.o: \
 /root/repo/src/ir/placeholder_ir.cpp /usr/include/stdc-predef.h
