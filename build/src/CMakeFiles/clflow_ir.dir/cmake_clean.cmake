file(REMOVE_RECURSE
  "CMakeFiles/clflow_ir.dir/ir/analysis.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/analysis.cpp.o.d"
  "CMakeFiles/clflow_ir.dir/ir/expr.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/expr.cpp.o.d"
  "CMakeFiles/clflow_ir.dir/ir/interp.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/interp.cpp.o.d"
  "CMakeFiles/clflow_ir.dir/ir/op_kernels.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/op_kernels.cpp.o.d"
  "CMakeFiles/clflow_ir.dir/ir/passes.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/passes.cpp.o.d"
  "CMakeFiles/clflow_ir.dir/ir/placeholder_ir.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/placeholder_ir.cpp.o.d"
  "CMakeFiles/clflow_ir.dir/ir/stmt.cpp.o"
  "CMakeFiles/clflow_ir.dir/ir/stmt.cpp.o.d"
  "libclflow_ir.a"
  "libclflow_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
