file(REMOVE_RECURSE
  "libclflow_ocl.a"
)
