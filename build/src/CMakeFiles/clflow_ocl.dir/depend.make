# Empty dependencies file for clflow_ocl.
# This may be replaced when dependencies are built.
