file(REMOVE_RECURSE
  "CMakeFiles/clflow_ocl.dir/ocl/runtime.cpp.o"
  "CMakeFiles/clflow_ocl.dir/ocl/runtime.cpp.o.d"
  "CMakeFiles/clflow_ocl.dir/ocl/trace.cpp.o"
  "CMakeFiles/clflow_ocl.dir/ocl/trace.cpp.o.d"
  "libclflow_ocl.a"
  "libclflow_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
