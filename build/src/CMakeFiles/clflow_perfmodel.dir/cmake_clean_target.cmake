file(REMOVE_RECURSE
  "libclflow_perfmodel.a"
)
