# Empty compiler generated dependencies file for clflow_perfmodel.
# This may be replaced when dependencies are built.
