file(REMOVE_RECURSE
  "CMakeFiles/clflow_perfmodel.dir/perfmodel/reference.cpp.o"
  "CMakeFiles/clflow_perfmodel.dir/perfmodel/reference.cpp.o.d"
  "libclflow_perfmodel.a"
  "libclflow_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
