file(REMOVE_RECURSE
  "libclflow_nets.a"
)
