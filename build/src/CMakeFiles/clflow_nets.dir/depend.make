# Empty dependencies file for clflow_nets.
# This may be replaced when dependencies are built.
