file(REMOVE_RECURSE
  "CMakeFiles/clflow_nets.dir/nets/nets.cpp.o"
  "CMakeFiles/clflow_nets.dir/nets/nets.cpp.o.d"
  "libclflow_nets.a"
  "libclflow_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflow_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
