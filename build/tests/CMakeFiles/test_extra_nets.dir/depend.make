# Empty dependencies file for test_extra_nets.
# This may be replaced when dependencies are built.
