file(REMOVE_RECURSE
  "CMakeFiles/test_extra_nets.dir/test_extra_nets.cpp.o"
  "CMakeFiles/test_extra_nets.dir/test_extra_nets.cpp.o.d"
  "test_extra_nets"
  "test_extra_nets.pdb"
  "test_extra_nets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
