
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fpga.cpp" "tests/CMakeFiles/test_fpga.dir/test_fpga.cpp.o" "gcc" "tests/CMakeFiles/test_fpga.dir/test_fpga.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_nets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
