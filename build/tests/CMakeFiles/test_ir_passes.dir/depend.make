# Empty dependencies file for test_ir_passes.
# This may be replaced when dependencies are built.
