file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_ops.dir/test_cpu_ops.cpp.o"
  "CMakeFiles/test_cpu_ops.dir/test_cpu_ops.cpp.o.d"
  "test_cpu_ops"
  "test_cpu_ops.pdb"
  "test_cpu_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
