file(REMOVE_RECURSE
  "CMakeFiles/test_ir_analysis.dir/test_ir_analysis.cpp.o"
  "CMakeFiles/test_ir_analysis.dir/test_ir_analysis.cpp.o.d"
  "test_ir_analysis"
  "test_ir_analysis.pdb"
  "test_ir_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
