# Empty dependencies file for test_ocl_runtime.
# This may be replaced when dependencies are built.
