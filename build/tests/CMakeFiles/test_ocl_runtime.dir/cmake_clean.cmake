file(REMOVE_RECURSE
  "CMakeFiles/test_ocl_runtime.dir/test_ocl_runtime.cpp.o"
  "CMakeFiles/test_ocl_runtime.dir/test_ocl_runtime.cpp.o.d"
  "test_ocl_runtime"
  "test_ocl_runtime.pdb"
  "test_ocl_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ocl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
