# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_ops[1]_include.cmake")
include("/root/repo/build/tests/test_deployment[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_extra_nets[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_ir_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_ir_core[1]_include.cmake")
include("/root/repo/build/tests/test_ir_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_ir_passes[1]_include.cmake")
include("/root/repo/build/tests/test_nets[1]_include.cmake")
include("/root/repo/build/tests/test_ocl_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_reports[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
