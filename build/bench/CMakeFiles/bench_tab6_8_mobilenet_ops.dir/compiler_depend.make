# Empty compiler generated dependencies file for bench_tab6_8_mobilenet_ops.
# This may be replaced when dependencies are built.
