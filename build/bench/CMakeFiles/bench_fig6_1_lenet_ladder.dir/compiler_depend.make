# Empty compiler generated dependencies file for bench_fig6_1_lenet_ladder.
# This may be replaced when dependencies are built.
