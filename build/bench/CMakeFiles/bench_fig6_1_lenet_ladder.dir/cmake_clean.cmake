file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_1_lenet_ladder.dir/bench_fig6_1_lenet_ladder.cpp.o"
  "CMakeFiles/bench_fig6_1_lenet_ladder.dir/bench_fig6_1_lenet_ladder.cpp.o.d"
  "bench_fig6_1_lenet_ladder"
  "bench_fig6_1_lenet_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_1_lenet_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
