# Empty dependencies file for bench_appendix_a_transfers.
# This may be replaced when dependencies are built.
