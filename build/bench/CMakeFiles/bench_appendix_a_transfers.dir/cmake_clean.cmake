file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_a_transfers.dir/bench_appendix_a_transfers.cpp.o"
  "CMakeFiles/bench_appendix_a_transfers.dir/bench_appendix_a_transfers.cpp.o.d"
  "bench_appendix_a_transfers"
  "bench_appendix_a_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_a_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
