# Empty dependencies file for bench_tab6_5_lenet_area.
# This may be replaced when dependencies are built.
