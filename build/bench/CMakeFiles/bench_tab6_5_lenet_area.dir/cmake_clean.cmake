file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_5_lenet_area.dir/bench_tab6_5_lenet_area.cpp.o"
  "CMakeFiles/bench_tab6_5_lenet_area.dir/bench_tab6_5_lenet_area.cpp.o.d"
  "bench_tab6_5_lenet_area"
  "bench_tab6_5_lenet_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_5_lenet_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
