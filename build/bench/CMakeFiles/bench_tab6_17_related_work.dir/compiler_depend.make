# Empty compiler generated dependencies file for bench_tab6_17_related_work.
# This may be replaced when dependencies are built.
