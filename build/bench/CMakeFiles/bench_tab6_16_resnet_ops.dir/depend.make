# Empty dependencies file for bench_tab6_16_resnet_ops.
# This may be replaced when dependencies are built.
