file(REMOVE_RECURSE
  "CMakeFiles/bench_quantized_mobilenet.dir/bench_quantized_mobilenet.cpp.o"
  "CMakeFiles/bench_quantized_mobilenet.dir/bench_quantized_mobilenet.cpp.o.d"
  "bench_quantized_mobilenet"
  "bench_quantized_mobilenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantized_mobilenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
