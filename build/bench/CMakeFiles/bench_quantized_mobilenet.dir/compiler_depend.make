# Empty compiler generated dependencies file for bench_quantized_mobilenet.
# This may be replaced when dependencies are built.
