file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_folded.dir/bench_ablation_folded.cpp.o"
  "CMakeFiles/bench_ablation_folded.dir/bench_ablation_folded.cpp.o.d"
  "bench_ablation_folded"
  "bench_ablation_folded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_folded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
