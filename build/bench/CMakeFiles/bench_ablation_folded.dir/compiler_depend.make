# Empty compiler generated dependencies file for bench_ablation_folded.
# This may be replaced when dependencies are built.
