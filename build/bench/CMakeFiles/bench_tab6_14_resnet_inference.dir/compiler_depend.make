# Empty compiler generated dependencies file for bench_tab6_14_resnet_inference.
# This may be replaced when dependencies are built.
