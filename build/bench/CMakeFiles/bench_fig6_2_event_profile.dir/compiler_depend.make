# Empty compiler generated dependencies file for bench_fig6_2_event_profile.
# This may be replaced when dependencies are built.
