file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_2_event_profile.dir/bench_fig6_2_event_profile.cpp.o"
  "CMakeFiles/bench_fig6_2_event_profile.dir/bench_fig6_2_event_profile.cpp.o.d"
  "bench_fig6_2_event_profile"
  "bench_fig6_2_event_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_2_event_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
