# Empty compiler generated dependencies file for bench_fig6_3_tiling_sweep.
# This may be replaced when dependencies are built.
