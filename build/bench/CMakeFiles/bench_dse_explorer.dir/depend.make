# Empty dependencies file for bench_dse_explorer.
# This may be replaced when dependencies are built.
