file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_11_mobilenet_inference.dir/bench_tab6_11_mobilenet_inference.cpp.o"
  "CMakeFiles/bench_tab6_11_mobilenet_inference.dir/bench_tab6_11_mobilenet_inference.cpp.o.d"
  "bench_tab6_11_mobilenet_inference"
  "bench_tab6_11_mobilenet_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_11_mobilenet_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
