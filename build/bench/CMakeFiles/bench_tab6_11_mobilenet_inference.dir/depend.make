# Empty dependencies file for bench_tab6_11_mobilenet_inference.
# This may be replaced when dependencies are built.
