# Empty dependencies file for bench_tab6_9_lenet_inference.
# This may be replaced when dependencies are built.
