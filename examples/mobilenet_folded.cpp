// Folded (time-multiplexed) execution of MobileNetV1, the paper's SS6.3.2
// scenario: parameterized symbolic-shape kernels are grouped by filter
// size and stride and reused across all 28 convolution layers, which is
// what lets the network fit on the Arria 10 at all.
//
// The example compiles the naive baseline and the optimized folded
// deployment for every evaluation board, prints the kernel grouping, and
// compares simulated throughput with the paper's comparison platforms.
#include <cstdio>

#include "core/deployment.hpp"
#include "nets/nets.hpp"
#include "common/parallel.hpp"
#include "perfmodel/reference.hpp"

int main() {
  using namespace clflow;

  Rng rng(11);
  graph::Graph net = nets::BuildMobileNetV1(rng);
  const auto cost = graph::GraphCost(net);
  std::printf("network: %s, %.2f GFLOPs, %.1fM parameters\n\n",
              net.name().c_str(), cost.flops / 1e9,
              static_cast<double>(cost.params) / 1e6);

  Tensor image = nets::SyntheticImagenetImage(rng);

  for (const auto& board : fpga::EvaluationBoards()) {
    core::DeployOptions base_opts;
    base_opts.mode = core::ExecutionMode::kFolded;
    base_opts.recipe = core::FoldedBase();
    base_opts.board = board;
    base_opts.functional_threads = HardwareThreads();

    core::DeployOptions opt_opts = base_opts;
    opt_opts.recipe = core::FoldedMobileNet(board.key);

    auto base = core::Deployment::Compile(net, base_opts);
    auto opt = core::Deployment::Compile(net, opt_opts);

    std::printf("== %s ==\n", board.name.c_str());
    if (!base.ok()) {
      std::printf("  baseline: DOES NOT SYNTHESIZE (%s)\n",
                  base.bitstream().status_detail.c_str());
    } else {
      std::printf("  baseline: %.2f FPS, %zu kernels\n",
                  base.EstimateFps(image), base.kernels().size());
    }
    if (!opt.ok()) {
      std::printf("  optimized: DOES NOT SYNTHESIZE (%s)\n",
                  opt.bitstream().status_detail.c_str());
      continue;
    }
    const double fps = opt.EstimateFps(image, /*verify=*/true);
    std::printf("  optimized: %.1f FPS (verified vs reference), "
                "%zu parameterized kernels, fmax %.0f MHz, DSPs %lld\n",
                fps, opt.kernels().size(), opt.bitstream().fmax_mhz,
                static_cast<long long>(opt.bitstream().totals.dsps));
    for (const auto& pk : opt.kernels()) {
      std::printf("    %-14s %s\n", pk.op_class.c_str(),
                  pk.tiling_desc.c_str());
    }
  }

  std::printf("\ncomparison platforms (calibrated models):\n");
  std::printf("  TF-CPU:   %5.1f FPS\n", perfmodel::TensorflowCpuFps(net));
  std::printf("  TVM-1T:   %5.1f FPS\n", perfmodel::TvmCpuFps(net, 1));
  std::printf("  TVM-16T:  %5.1f FPS\n", perfmodel::TvmCpuFps(net, 16));
  std::printf("  TF-cuDNN: %5.1f FPS\n", perfmodel::TensorflowGpuFps(net));
  return 0;
}
