// Quickstart: compile LeNet-5 to a simulated Stratix 10 SX accelerator,
// run one MNIST-sized image through both the naive and the fully
// optimized pipelined deployment, and print what the flow produced.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "core/deployment.hpp"
#include "nets/nets.hpp"
#include "perfmodel/reference.hpp"

int main() {
  using namespace clflow;

  // 1. Build the network (seeded-random parameters; see DESIGN.md).
  Rng rng(7);
  graph::Graph lenet = nets::BuildLeNet5(rng);
  const auto cost = graph::GraphCost(lenet);
  std::printf("network: %s, %.0f FLOPs, %lld parameters\n",
              lenet.name().c_str(), cost.flops,
              static_cast<long long>(cost.params));

  // 2. Compile two deployments: the TVM-default baseline and the full
  //    optimization ladder (unroll + channels + autorun + concurrency).
  core::DeployOptions base_opts;
  base_opts.mode = core::ExecutionMode::kPipelined;
  base_opts.recipe = core::PipelineBase();
  base_opts.board = fpga::Stratix10SX();

  core::DeployOptions opt_opts = base_opts;
  opt_opts.recipe = core::PipelineTvmAutorun();
  opt_opts.recipe.concurrent_execution = true;

  auto base = core::Deployment::Compile(lenet, base_opts);
  auto opt = core::Deployment::Compile(lenet, opt_opts);
  std::printf("baseline synthesis: %s, fmax %.0f MHz, logic %.0f%%\n",
              std::string(fpga::SynthStatusName(base.bitstream().status)).c_str(),
              base.bitstream().fmax_mhz,
              base.bitstream().totals.alut_frac * 100);
  std::printf("optimized synthesis: %s, fmax %.0f MHz, logic %.0f%%\n",
              std::string(fpga::SynthStatusName(opt.bitstream().status)).c_str(),
              opt.bitstream().fmax_mhz,
              opt.bitstream().totals.alut_frac * 100);

  // 3. Run one image functionally (real numbers, verified against the
  //    reference CPU implementation) and estimate throughput.
  Tensor image = nets::SyntheticMnistImage(rng);
  auto result = opt.Run(image, /*functional=*/true);
  std::printf("predicted digit: %lld (latency %.1f us simulated)\n",
              static_cast<long long>(result.output.ArgMax()),
              result.latency.us());

  const double base_fps = base.EstimateFps(image, /*verify=*/true);
  const double opt_fps = opt.EstimateFps(image, /*verify=*/true);
  std::printf("baseline:  %8.0f FPS (simulated)\n", base_fps);
  std::printf("optimized: %8.0f FPS (simulated), %.2fx over baseline\n",
              opt_fps, opt_fps / base_fps);
  std::printf("TF-CPU reference model: %.0f FPS -> FPGA speedup %.2fx\n",
              perfmodel::TensorflowCpuFps(lenet),
              opt_fps / perfmodel::TensorflowCpuFps(lenet));

  // 4. Show a slice of the generated OpenCL.
  const std::string source = opt.GeneratedSource();
  std::printf("\ngenerated OpenCL (%zu bytes); first kernel:\n",
              source.size());
  std::printf("%.640s...\n", source.c_str());
  return 0;
}
