// ResNet-18/34 folded deployment: the paper's "large CNN" scenario, where
// the FPGA flow hits its limits (SS6.4.3/SS6.5). The example shows:
//   * the Arria 10 cannot host ResNet at all (BRAM consumed by LSUs);
//   * the Stratix boards run it, but slower than a many-threaded CPU;
//   * per-op profiling that localizes the bottlenecks.
#include <cstdio>

#include "common/parallel.hpp"
#include "core/deployment.hpp"
#include "nets/nets.hpp"
#include "perfmodel/reference.hpp"

int main(int argc, char** argv) {
  using namespace clflow;
  const int depth = argc > 1 ? std::atoi(argv[1]) : 18;
  if (depth != 18 && depth != 34) {
    std::fprintf(stderr, "usage: %s [18|34]\n", argv[0]);
    return 1;
  }

  Rng rng(23);
  graph::Graph net = nets::BuildResNet(depth, rng);
  const auto cost = graph::GraphCost(net);
  std::printf("network: %s, %.2fG FLOPs, %.1fM parameters, %zu graph nodes\n\n",
              net.name().c_str(), cost.flops / 1e9,
              static_cast<double>(cost.params) / 1e6, net.nodes().size());

  Tensor image = nets::SyntheticImagenetImage(rng);

  for (const auto& board : fpga::EvaluationBoards()) {
    core::DeployOptions opts;
    opts.mode = core::ExecutionMode::kFolded;
    opts.recipe = core::FoldedResNet();
    opts.board = board;
    opts.functional_threads = HardwareThreads();
    auto d = core::Deployment::Compile(net, opts);

    std::printf("== %s ==\n", board.name.c_str());
    if (!d.ok()) {
      std::printf("  does not synthesize: %s\n",
                  d.bitstream().status_detail.c_str());
      continue;
    }
    const double fps = d.EstimateFps(image, /*verify=*/board.key == "s10sx");
    std::printf("  %.2f FPS (%.1f GFLOPS), fmax %.0f MHz, "
                "%zu parameterized kernels for %zu layer invocations\n",
                fps, fps * cost.flops / 1e9, d.bitstream().fmax_mhz,
                d.kernels().size(), d.invocations().size());
    std::printf("  top time consumers:\n");
    int shown = 0;
    for (const auto& e : d.ProfileOps()) {
      if (shown++ >= 4) break;
      std::printf("    %-14s %5.1f%% of time, %6.2f GFLOPS\n",
                  e.op_class.c_str(), e.runtime_share * 100, e.gflops);
    }
  }

  std::printf("\nCPU/GPU context: TF-CPU %.1f FPS, TVM-56T %.1f FPS, "
              "TF-cuDNN %.1f FPS\n",
              perfmodel::TensorflowCpuFps(net),
              perfmodel::TvmCpuFps(net, 56),
              perfmodel::TensorflowGpuFps(net));
  std::printf("(as in the paper, the folded FPGA deployment loses to the "
              "112-thread CPU on ResNet)\n");
  return 0;
}
