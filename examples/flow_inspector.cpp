// Flow inspector: compiles a network for a board and writes every
// artifact the real flow would produce -- the OpenCL kernels (.cl), the
// custom host program (SS5.2), and the fit report -- so the whole
// compilation can be inspected file by file.
//
// With --report it additionally runs one image and prints the
// observability layer's view of the flow: per-phase compile timings,
// IR-pass statistics, synthesis area, per-queue occupancy/stall metrics,
// per-kernel predicted-vs-observed divergence, and the perfmodel
// comparison. With --trace-out FILE it writes a merged Chrome/Perfetto
// trace (compile-phase spans on one process row, the simulated runtime
// schedule on another).
//
// With --lint it prints the static-analysis diagnostics (IR verifier,
// dataflow checker, perf lints) as a table and exits nonzero when any
// error-severity finding remains. --lint-promote CODE / --lint-demote CODE
// adjust a code's severity before the gate runs; --break-channel injects a
// bogus channel read into the launch plan to demonstrate the checker
// rejecting statically what previously only failed at runtime.
//
// With --lint-src the emitted OpenCL source is re-parsed and validated
// against the plan by clflow::srclint (the CLF8xx family: translation
// validation, loop-carried dependences, provable OOB indices, hygiene
// lints). Diagnostics print as a table and land in <base>_srclint.json;
// any error-severity finding exits nonzero. --srclint-inject MODE
// demonstrates each code firing deterministically: modes parse/sig/
// chan-endpoint/unroll/chan-type/restrict corrupt the real emission
// before linting (CLF800/801/802/803/804/807), while loop-dep/oob/
// dead-store/uninit lint a built-in defective kernel plan-free
// (CLF805/806/808/809).
//
// With --inject-fault SPEC (repeatable; see resilience/fault.hpp for the
// spec grammar, e.g. xfer-fail:write:0:2 or hang:k_conv1) it runs one
// functional image under a deterministic fault plan (--fault-seed N, 17
// by default), checks the recovered output bit-exactly against the graph
// oracle, and prints the injected-fault log plus the runtime's recovery
// counters; unrecovered faults print the structured CLF5xx error and exit
// nonzero. With --fallback the compile goes through
// core::CompileWithFallback and prints the degradation ladder;
// --over-tile first inflates the 1x1 tiling to a config known to fail
// routing on s10sx, demonstrating the recovery.
//
// With --profile it runs one timing image through the profiler
// (prof::BuildProfile): per-kernel bottleneck attribution (II / memory-BW
// / channel-stall / fmax / launch-overhead), the roofline view, queue
// busy/idle, and predicted-vs-observed drift. The report is printed as
// text and written as <base>_profile.txt/.json/.html (the HTML embeds the
// timeline and attribution bars, no external assets); drift and
// conservation violations surface as CLF6xx diagnostics.
//
// With --dse the folded tiling explorer (core::ExploreFoldedTilings) runs
// first and the compile uses its best recipe; the ranked table, every
// rejection counter (divisibility/bandwidth/bound/dominated/fit/route),
// the top_k truncation line (worst kept vs. best dropped fps), and the
// compile-cache hit statistics are printed. --dse-jobs N compiles
// candidates on N worker threads (the result is identical for any N);
// --dse-dominance enables the heuristic dominance filter.
//
// With --monitor it drives a batch of timing requests through the
// telemetry::SloMonitor (p50/p95/p99 latency, goodput, error-budget burn
// rate against a budget anchored 5% above the first request) and writes
// <base>_monitor.json plus a Prometheus text exposition of every runtime
// metric as <base>_metrics.prom. Every run also arms the flight recorder:
// when a RuntimeFaultError or VerifyError escapes, the recent structured
// event ring is dumped to <base>_flightrec.json for postmortem debugging.
//
// With --replicas N the faulted image (or a clean one) is routed through
// an ha::ReplicaSet of N boards instead of a single deployment: any
// --inject-fault plan lands on board 0, the dispatcher fails the batch
// over, and the per-board health table plus the ha.* gauges are printed.
// With --observatory a deterministic open-loop load generator
// (serve::RunLoadCampaign) drives the compiled deployment -- or a replica
// set when --replicas N is also given, with any --inject-fault plan armed
// on board 0 -- under a pinned-seed Poisson trace and a bursty trace
// (--obs-requests N, --obs-seed N). It writes the self-contained
// observatory dashboards (<base>_observatory[_bursty].html), the combined
// machine-readable report (<base>_observatory.json), and a Chrome-trace
// counter file (<base>_observatory_trace.json), then prints per-campaign
// summaries and a final `observatory-digest:` line the CI smoke diffs
// across runs.
//
// With --chaos a deterministic ha::ChaosCampaign sweeps seeded fault
// plans (--chaos-scenarios N, --chaos-seed N) across fresh replica sets
// and asserts the four recovery invariants per scenario; the summary
// prints, any violation exits nonzero, and --chaos-report additionally
// writes the per-scenario JSON table to <base>_chaos.json.
//
// usage: example_flow_inspector [lenet|mobilenet|resnet18|resnet34]
//                               [a10|s10sx|s10mx] [pipelined|folded]
//                               [outdir] [--report] [--profile]
//                               [--monitor] [--trace-out FILE]
//                               [--lint] [--lint-promote CODE]
//                               [--lint-demote CODE] [--break-channel]
//                               [--lint-src] [--srclint-inject MODE]
//                               [--inject-fault SPEC] [--fault-seed N]
//                               [--fallback] [--over-tile]
//                               [--dse] [--dse-jobs N] [--dse-dominance]
//                               [--replicas N] [--chaos]
//                               [--chaos-scenarios N] [--chaos-seed N]
//                               [--chaos-report] [--observatory]
//                               [--obs-requests N] [--obs-seed N]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataflow_checker.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "ha/chaos.hpp"
#include "ha/replica_set.hpp"
#include "core/dse.hpp"
#include "core/fallback.hpp"
#include "core/host_codegen.hpp"
#include "fpga/report.hpp"
#include "nets/nets.hpp"
#include "obs/json.hpp"
#include "ocl/trace.hpp"
#include "perfmodel/reference.hpp"
#include "prof/prof.hpp"
#include "prof/report.hpp"
#include "resilience/fault.hpp"
#include "serve/loadgen.hpp"
#include "serve/observatory.hpp"
#include "srclint/inject.hpp"
#include "srclint/srclint.hpp"

namespace {

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << contents;
  std::printf("wrote %-28s (%zu bytes)\n", path.c_str(), contents.size());
}

/// Per-phase compile timings from the tracer: top-level phases plus one
/// indented level, with the IR-pass spam left to the aggregated pass table.
void PrintCompilePhases(const clflow::obs::Tracer& tracer) {
  clflow::Table table({"Phase", "Wall us", "Detail"});
  for (const auto& span : tracer.spans()) {
    if (span.depth > 1) continue;
    std::string detail;
    for (const auto& [key, value] : span.args) {
      if (!detail.empty()) detail += " ";
      detail += key + "=" + value;
    }
    table.AddRow({std::string(static_cast<std::size_t>(span.depth) * 2, ' ') +
                      span.name,
                  clflow::Table::Num(static_cast<double>(span.dur_us), 0),
                  detail});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clflow;
  std::vector<std::string> positional;
  bool report = false;
  bool profile = false;
  bool monitor = false;
  bool lint = false;
  bool lint_src = false;
  std::string srclint_inject;
  bool break_channel = false;
  bool use_fallback = false;
  bool over_tile = false;
  bool run_dse = false;
  bool dse_dominance = false;
  int dse_jobs = 1;
  std::vector<std::string> fault_specs;
  std::uint64_t fault_seed = 17;
  int replicas = 0;
  bool observatory = false;
  int obs_requests = 240;
  std::uint64_t obs_seed = 2021;
  bool chaos = false;
  bool chaos_report = false;
  int chaos_scenarios = 200;
  std::uint64_t chaos_seed = 2021;
  std::vector<std::pair<std::string, analysis::Severity>> overrides;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report") {
      report = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--monitor") {
      monitor = true;
    } else if (arg == "--fallback") {
      use_fallback = true;
    } else if (arg == "--over-tile") {
      over_tile = true;
    } else if (arg == "--dse") {
      run_dse = true;
    } else if (arg == "--dse-jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--dse-jobs requires an integer argument\n");
        return 1;
      }
      run_dse = true;
      dse_jobs = std::stoi(argv[++i]);
    } else if (arg == "--dse-dominance") {
      run_dse = true;
      dse_dominance = true;
    } else if (arg == "--inject-fault") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--inject-fault requires a spec argument\n");
        return 1;
      }
      fault_specs.emplace_back(argv[++i]);
    } else if (arg == "--fault-seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--fault-seed requires an integer argument\n");
        return 1;
      }
      fault_seed = std::stoull(argv[++i]);
    } else if (arg == "--replicas") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--replicas requires an integer argument\n");
        return 1;
      }
      replicas = std::stoi(argv[++i]);
    } else if (arg == "--observatory") {
      observatory = true;
    } else if (arg == "--obs-requests") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--obs-requests requires an integer argument\n");
        return 1;
      }
      observatory = true;
      obs_requests = std::stoi(argv[++i]);
    } else if (arg == "--obs-seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--obs-seed requires an integer argument\n");
        return 1;
      }
      observatory = true;
      obs_seed = std::stoull(argv[++i]);
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--chaos-report") {
      chaos = true;
      chaos_report = true;
    } else if (arg == "--chaos-scenarios") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "--chaos-scenarios requires an integer argument\n");
        return 1;
      }
      chaos = true;
      chaos_scenarios = std::stoi(argv[++i]);
    } else if (arg == "--chaos-seed") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--chaos-seed requires an integer argument\n");
        return 1;
      }
      chaos = true;
      chaos_seed = std::stoull(argv[++i]);
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--lint-src") {
      lint_src = true;
    } else if (arg == "--srclint-inject") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--srclint-inject requires a mode argument\n");
        return 1;
      }
      lint_src = true;
      srclint_inject = argv[++i];
    } else if (arg == "--break-channel") {
      lint = true;
      break_channel = true;
    } else if (arg == "--lint-promote" || arg == "--lint-demote") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a CLF code argument\n", arg.c_str());
        return 1;
      }
      overrides.emplace_back(argv[++i], arg == "--lint-promote"
                                            ? analysis::Severity::kError
                                            : analysis::Severity::kWarning);
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace-out requires a file argument\n");
        return 1;
      }
      trace_out = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else {
      positional.push_back(arg);
    }
  }
  const std::string net_name = positional.size() > 0 ? positional[0] : "lenet";
  const std::string board_key = positional.size() > 1 ? positional[1]
                                                      : "s10sx";
  const std::string mode_name = positional.size() > 2 ? positional[2] : "";
  const std::string outdir = positional.size() > 3 ? positional[3] : ".";

  Rng rng(17);
  graph::Graph net;
  if (net_name == "lenet") {
    net = nets::BuildLeNet5(rng);
  } else if (net_name == "mobilenet") {
    net = nets::BuildMobileNetV1(rng);
  } else if (net_name == "resnet18") {
    net = nets::BuildResNet(18, rng);
  } else if (net_name == "resnet34") {
    net = nets::BuildResNet(34, rng);
  } else {
    std::fprintf(stderr, "unknown network %s\n", net_name.c_str());
    return 1;
  }

  const std::string base = outdir + "/" + net.name() + "_" + board_key;

  core::DeployOptions opts;
  opts.board = fpga::BoardByKey(board_key);
  // Arm the flight recorder: a RuntimeFaultError/VerifyError escaping
  // Compile or Run dumps the recent-event ring here for postmortems.
  opts.flightrec_path = base + "_flightrec.json";
  const bool pipelined =
      mode_name.empty() ? net_name == "lenet" : mode_name == "pipelined";
  if (pipelined) {
    opts.mode = core::ExecutionMode::kPipelined;
    opts.recipe = core::PipelineTvmAutorun();
    opts.recipe.concurrent_execution = true;
  } else {
    opts.mode = core::ExecutionMode::kFolded;
    if (net_name == "mobilenet") {
      opts.recipe = core::FoldedMobileNet(board_key);
    } else if (net_name == "lenet") {
      opts.recipe = core::FoldedBase();
    } else {
      opts.recipe = core::FoldedResNet();
    }
  }

  if (over_tile) {
    // The Table 6.6 sweep's known routing casualty on Stratix 10 SX:
    // C1/W2/C2 = 8/7/16 synthesizes but fails to route. With --fallback
    // the ladder walks it back to a routable configuration.
    opts.recipe.conv1x1 = core::ConvTiling{8, 7, 16, true};
    opts.recipe.name += "+overtile";
  }

  for (const auto& [code, severity] : overrides) {
    opts.analysis.severity_overrides[code] = severity;
  }

  std::optional<core::DseResult> dse;
  if (run_dse) {
    if (pipelined) {
      std::fprintf(stderr, "--dse applies to folded execution only\n");
      return 1;
    }
    core::DseOptions dopts;
    dopts.jobs = dse_jobs;
    dopts.dominance_prune = dse_dominance;
    std::printf("exploring folded tilings for %s on %s (%d job(s))...\n",
                net.name().c_str(), opts.board.name.c_str(),
                dopts.jobs);
    dse = core::ExploreFoldedTilings(net, opts.board, dopts, opts.cost_model);
    std::printf(
        "\n--- DSE: %zu considered | rejected %zu divisibility, %zu "
        "bandwidth, %zu bound, %zu dominated, %zu fit, %zu route ---\n",
        dse->considered, dse->rejected_divisibility, dse->rejected_bandwidth,
        dse->rejected_bound, dse->rejected_dominated, dse->rejected_fit,
        dse->rejected_route);
    Table ranked({"Rank", "C1/W2/C2", "FPS", "fmax MHz", "DSPs", "ALUT %"});
    for (std::size_t i = 0; i < dse->ranked.size(); ++i) {
      const core::DseCandidate& c = dse->ranked[i];
      ranked.AddRow({std::to_string(i + 1),
                     std::to_string(c.conv1x1.c1) + "/" +
                         std::to_string(c.conv1x1.w2) + "/" +
                         std::to_string(c.conv1x1.c2),
                     Table::Num(c.predicted_fps, 1),
                     Table::Num(c.fmax_mhz, 0),
                     std::to_string(c.dsps), Table::Pct(c.alut_frac)});
    }
    ranked.Print();
    if (dse->truncated()) {
      std::printf(
          "top_k truncated: kept %zu of %zu feasible; worst kept %.2f fps, "
          "best dropped %.2f fps\n",
          dse->ranked.size(), dse->feasible_total, dse->worst_kept_fps,
          dse->best_dropped_fps);
    } else {
      std::printf("all %zu feasible candidates kept (worst %.2f fps)\n",
                  dse->feasible_total, dse->worst_kept_fps);
    }
    std::printf(
        "compile cache: %lld hits / %lld misses (%.0f%% hit rate), %lld "
        "entries, %.1f KiB\n",
        static_cast<long long>(dse->cache_stats.hits()),
        static_cast<long long>(dse->cache_stats.misses()),
        dse->cache_stats.hit_rate() * 100.0,
        static_cast<long long>(dse->cache_stats.entries),
        static_cast<double>(dse->cache_stats.bytes) / 1024.0);
    if (dse->ranked.empty()) {
      std::fprintf(stderr, "DSE found no feasible configuration\n");
      return 1;
    }
    opts.recipe = dse->BestRecipe(board_key);
  }

  std::printf("compiling %s for %s (%s)...\n", net.name().c_str(),
              opts.board.name.c_str(), pipelined ? "pipelined" : "folded");
  std::optional<core::Deployment> compiled;
  if (use_fallback) {
    core::FallbackResult fb = core::CompileWithFallback(net, opts);
    std::printf("\n--- fallback ladder (%zu attempt(s)) ---\n",
                fb.attempts.size());
    for (const auto& a : fb.attempts) {
      std::printf("%s\n", a.ToString().c_str());
    }
    if (!fb.ok()) {
      std::fprintf(stderr,
                   "fallback: ladder exhausted without a synthesizable "
                   "design\n");
      return 1;
    }
    if (fb.recovered()) {
      std::printf("recovered after %zu attempts\n", fb.attempts.size());
    }
    compiled.emplace(std::move(*fb.deployment));
  } else {
    try {
      compiled = core::Deployment::Compile(net, opts);
    } catch (const VerifyError& e) {
      std::fprintf(stderr, "static analysis failed:\n%s", e.what());
      std::fprintf(stderr, "flight recorder dumped to %s\n",
                   opts.flightrec_path.c_str());
      return 1;
    }
  }
  core::Deployment& d = *compiled;

  if (lint) {
    auto& diags = d.diagnostics();
    if (break_channel) {
      // Perturb the plan: a consumer of a channel nothing writes. Before
      // the dataflow checker existed this configuration compiled fine and
      // deadlocked inside ocl::Runtime; now it is a static CLF201.
      analysis::Plan plan = d.AnalysisPlan();
      analysis::PlanStep bogus;
      bogus.kernel = "k_injected_consumer";
      bogus.reads.push_back("ch_nonexistent");
      plan.steps.push_back(std::move(bogus));
      analysis::CheckDataflow(plan, diags);
    }
    std::printf("\n--- static analysis (%d error(s), %d warning(s)) ---\n",
                diags.error_count(), diags.warning_count());
    if (!diags.diagnostics().empty()) diags.SummaryTable().Print();
    if (diags.HasErrors()) {
      std::fprintf(stderr, "lint: %d error(s)\n", diags.error_count());
      return 1;
    }
  }

  if (lint_src) {
    // A fresh engine: the compile gate already ran srclint once; this is
    // the offline view of the same check (optionally over a corrupted
    // emission or a built-in defective kernel).
    analysis::DiagnosticEngine sdiags;
    for (const auto& [code, severity] : overrides) {
      sdiags.OverrideSeverity(code, severity);
    }
    std::string source;
    if (const char* snippet =
            srclint_inject.empty()
                ? nullptr
                : srclint::SyntheticDefectSnippet(srclint_inject)) {
      source = snippet;
      srclint::LintSource(source, sdiags);
      std::printf("\nsrclint: built-in '%s' kernel, linted plan-free\n",
                  srclint_inject.c_str());
    } else {
      source = d.GeneratedSource();
      if (!srclint_inject.empty()) {
        auto corrupted =
            srclint::InjectDefect(srclint_inject, std::move(source));
        if (!corrupted) {
          std::fprintf(stderr,
                       "--srclint-inject %s: unknown mode or no anchor text "
                       "in this design's emission\n",
                       srclint_inject.c_str());
          return 1;
        }
        source = std::move(*corrupted);
        std::printf("\nsrclint: emission corrupted with mode '%s'\n",
                    srclint_inject.c_str());
      }
      std::vector<const ir::Kernel*> planned;
      planned.reserve(d.kernels().size());
      for (const auto& pk : d.kernels()) {
        planned.push_back(&pk.built.kernel);
      }
      srclint::LintProgram(source, planned, sdiags);
    }
    std::printf("\n--- srclint (%d error(s), %d warning(s)) ---\n",
                sdiags.error_count(), sdiags.warning_count());
    if (!sdiags.diagnostics().empty()) sdiags.SummaryTable().Print();
    WriteFile(base + "_srclint.json", sdiags.ToJson());
    if (sdiags.HasErrors()) {
      std::fprintf(stderr, "srclint: %d error(s)\n", sdiags.error_count());
      return 1;
    }
  }

  WriteFile(base + "_fit_report.txt", fpga::WriteFitReport(d.bitstream()));
  if (!d.ok()) {
    std::printf("design does not synthesize: %s\n",
                d.bitstream().status_detail.c_str());
    if (report) {
      std::printf("\n--- compile phases (wall clock) ---\n");
      PrintCompilePhases(d.telemetry().tracer);
      std::printf("\n--- compile metrics ---\n");
      d.telemetry().registry.SummaryTable().Print();
    }
    return 0;
  }
  WriteFile(base + ".cl", d.GeneratedSource());
  WriteFile(base + "_host.cpp", core::EmitHostProgram(d));
  WriteFile(base + "_graph.txt", d.fused_graph().ToString());

  std::printf("\nfmax %.0f MHz, %zu kernels, %zu invocations/pass\n",
              d.bitstream().fmax_mhz, d.kernels().size(),
              d.invocations().size());

  const Shape& in_shape = net.node(net.input_id()).output_shape;
  Tensor image = Tensor::Random(in_shape, rng, 0.0f, 1.0f);

  if (observatory) {
    // Pinned-seed load campaigns: a Poisson trace (steady state) and a
    // bursty one (queueing under overload) through the same target. Each
    // campaign gets a fresh target so health state never leaks between
    // them -- that is what makes the digests reproducible.
    std::optional<resilience::FaultPlan> plan;
    if (!fault_specs.empty()) {
      plan.emplace();
      plan->seed = fault_seed;
      try {
        for (const auto& spec : fault_specs) {
          plan->specs.push_back(resilience::ParseFaultSpec(spec));
        }
      } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    }
    auto campaign = [&](serve::TraceShape shape) {
      serve::LoadgenOptions lo;
      lo.seed = obs_seed;
      lo.requests = obs_requests;
      lo.shape = shape;
      if (replicas > 0) {
        ha::HaOptions haopts;
        haopts.replicas = replicas;
        ha::ReplicaSet rs(net, opts, haopts);
        if (plan) {
          rs.set_fault_injector(
              0, std::make_shared<resilience::FaultInjector>(*plan));
        }
        return serve::RunLoadCampaign(rs, image, lo);
      }
      return serve::RunLoadCampaign(d, image, lo);
    };
    const std::string target_note =
        replicas > 0 ? ", " + std::to_string(replicas) + " replica(s)" : "";
    std::printf("\n--- observatory: %d request(s)/campaign, seed %llu%s "
                "---\n",
                obs_requests, static_cast<unsigned long long>(obs_seed),
                target_note.c_str());
    const serve::LoadgenReport poisson =
        campaign(serve::TraceShape::kPoisson);
    const serve::LoadgenReport bursty = campaign(serve::TraceShape::kBursty);
    const serve::Observatory obs_p =
        serve::BuildObservatory(poisson, net.name() + " @ " + board_key);
    const serve::Observatory obs_b =
        serve::BuildObservatory(bursty, net.name() + " @ " + board_key);
    Table summary({"Campaign", "p50 us", "p99 us", "Goodput", "Achieved rps",
                   "Peak occ", "Failovers", "Errors"});
    for (const serve::Observatory* o : {&obs_p, &obs_b}) {
      summary.AddRow({o->shape, Table::Num(o->p50_us, 1),
                      Table::Num(o->p99_us, 1), Table::Pct(o->goodput),
                      Table::Num(o->achieved_rps, 1),
                      Table::Pct(o->peak_occupancy),
                      std::to_string(o->failovers),
                      std::to_string(o->errors)});
    }
    summary.Print();
    WriteFile(base + "_observatory.html", obs_p.ToHtml());
    WriteFile(base + "_observatory_bursty.html", obs_b.ToHtml());
    WriteFile(base + "_observatory.json", "{\"poisson\":" + obs_p.ToJson() +
                                              ",\"bursty\":" +
                                              obs_b.ToJson() + "}");
    WriteFile(base + "_observatory_trace.json", obs_p.ToChromeTrace());
    std::printf("observatory-digest: poisson %016llx bursty %016llx\n",
                static_cast<unsigned long long>(obs_p.digest),
                static_cast<unsigned long long>(obs_b.digest));
    return 0;
  }

  if (chaos) {
    ha::ChaosOptions copts;
    copts.scenarios = chaos_scenarios;
    copts.seed = chaos_seed;
    copts.replicas = replicas > 0 ? replicas : 2;
    copts.jobs = HardwareThreads();
    // Scenario postmortems (quarantine + escaping-fault dumps) land next
    // to the other artifacts as <base>_chaos_s<i>_board<j>_*.json.
    copts.flightrec_prefix = base + "_chaos_";
    std::printf(
        "\n--- chaos campaign: %d scenario(s), seed %llu, %d replica(s), "
        "%d job(s) ---\n",
        copts.scenarios, static_cast<unsigned long long>(copts.seed),
        copts.replicas, copts.jobs);
    const ha::ChaosReport rep = ha::RunChaosCampaign(net, opts, copts);
    std::printf("%s", rep.SummaryTable().c_str());
    std::printf("digest %016llx\n",
                static_cast<unsigned long long>(rep.Digest()));
    if (chaos_report) WriteFile(base + "_chaos.json", rep.ToJson());
    if (!rep.ok()) {
      std::fprintf(stderr, "chaos: %d scenario(s) violated an invariant\n",
                   rep.failed);
      return 3;
    }
    return 0;
  }

  if (replicas > 0) {
    ha::HaOptions haopts;
    haopts.replicas = replicas;
    haopts.flightrec_prefix = base + "_ha_";
    std::printf("\n--- replica set: %d board(s) ---\n", replicas);
    ha::ReplicaSet rs(net, opts, haopts);
    if (!fault_specs.empty()) {
      resilience::FaultPlan plan;
      plan.seed = fault_seed;
      try {
        for (const auto& spec : fault_specs) {
          plan.specs.push_back(resilience::ParseFaultSpec(spec));
        }
      } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
      rs.set_fault_injector(
          0, std::make_shared<resilience::FaultInjector>(plan));
      std::printf("fault plan (seed %llu, %zu spec(s)) armed on board 0\n",
                  static_cast<unsigned long long>(fault_seed),
                  plan.specs.size());
    }
    const ha::HaRunResult r = rs.Run(image, /*functional=*/true);
    const Tensor expected = graph::Execute(d.fused_graph(), image, 1);
    const Tensor got = r.output.Reshaped(expected.shape());
    const auto g_span = got.data();
    const auto e_span = expected.data();
    const bool exact =
        std::equal(g_span.begin(), g_span.end(), e_span.begin());
    const std::string served_by =
        r.used_fallback ? "the folded fallback"
                        : "board " + std::to_string(r.board);
    std::printf(
        "batch served by %s after %d failover(s): latency %.1f us, "
        "recovery %.1f us, output %s the oracle\n",
        served_by.c_str(), r.failovers(), r.latency.us(),
        r.recovery_time.us(),
        exact ? "bit-exactly matches" : "DIVERGES from");
    Table health({"Board", "Health", "Dispatched", "Completed", "Faults",
                  "Quarantines", "Probes"});
    for (int b = 0; b < rs.num_replicas(); ++b) {
      const ha::BoardState& st = rs.board_state(b);
      health.AddRow({std::to_string(b),
                     std::string(ha::BoardHealthName(st.health)),
                     std::to_string(st.dispatched),
                     std::to_string(st.completed),
                     std::to_string(st.faults),
                     std::to_string(st.quarantines),
                     std::to_string(st.probes)});
    }
    health.Print();
    obs::Registry hareg;
    rs.ExportMetrics(hareg);
    std::printf("\n--- ha metrics ---\n");
    hareg.SummaryTable().Print();
    if (!rs.diagnostics().diagnostics().empty()) {
      rs.diagnostics().SummaryTable().Print();
    }
    return exact ? 0 : 2;
  }

  if (!fault_specs.empty()) {
    resilience::FaultPlan plan;
    plan.seed = fault_seed;
    try {
      for (const auto& spec : fault_specs) {
        plan.specs.push_back(resilience::ParseFaultSpec(spec));
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    auto injector = std::make_shared<resilience::FaultInjector>(plan);
    auto& rt = d.runtime();
    rt.set_fault_injector(injector);
    std::printf("\n--- fault injection (seed %llu, %zu spec(s)) ---\n",
                static_cast<unsigned long long>(fault_seed),
                plan.specs.size());
    int fault_rc = 0;
    try {
      const auto faulted = d.Run(image, /*functional=*/true);
      const Tensor expected = graph::Execute(d.fused_graph(), image, 1);
      const Tensor got = faulted.output.Reshaped(expected.shape());
      const auto g_span = got.data();
      const auto e_span = expected.data();
      const bool exact =
          std::equal(g_span.begin(), g_span.end(), e_span.begin());
      std::printf("recovered run: latency %.1f us, output %s the oracle\n",
                  faulted.latency.us(),
                  exact ? "bit-exactly matches" : "DIVERGES from");
      if (!exact) fault_rc = 2;
    } catch (const RuntimeFaultError& e) {
      std::fprintf(stderr,
                   "unrecovered runtime fault: %s\n  code=%s kernel=%s "
                   "channel=%s attempts=%d\n  %s\n",
                   e.what(), e.code().c_str(), e.kernel().c_str(),
                   e.channel().c_str(), e.attempts(),
                   e.queue_snapshot().c_str());
      std::fprintf(stderr, "flight recorder dumped to %s\n",
                   opts.flightrec_path.c_str());
      fault_rc = 2;
    }
    for (const auto& f : injector->injected()) {
      std::printf("injected: %s\n", f.ToString().c_str());
    }
    std::printf(
        "recovery: %lld transfer retries, %lld kernel reruns, %lld "
        "reprograms, %.1f us backoff\n",
        static_cast<long long>(rt.xfer_retries()),
        static_cast<long long>(rt.kernel_reruns()),
        static_cast<long long>(rt.reprograms()), rt.backoff_time().us());
    if (!d.diagnostics().diagnostics().empty()) {
      d.diagnostics().SummaryTable().Print();
    }
    // Detach so the report/trace runs below are fault-free; the faulted
    // run's events stay in the trace.
    rt.set_fault_injector(nullptr);
    if (fault_rc != 0) return fault_rc;
  }

  if (!report && !profile && !monitor && trace_out.empty()) return 0;

  // One timing-only image drives the runtime-side metrics and the trace.
  const auto run = d.Run(image, /*functional=*/false);
  const double fps = 1.0 / run.latency.seconds();

  if (report) {
    std::printf("\n--- compile phases (wall clock) ---\n");
    PrintCompilePhases(d.telemetry().tracer);

    std::printf("\n--- compile & pass metrics ---\n");
    d.telemetry().registry.SummaryTable().Print();

    std::printf("\n--- runtime metrics (one image, simulated) ---\n");
    std::printf("latency %.1f us (%.1f fps)\n", run.latency.us(), fps);
    Table queues({"Queue", "Busy us", "Idle us", "Occupancy"});
    auto& rt = d.runtime();
    for (int q = 0; q < rt.num_queues(); ++q) {
      const auto usage = rt.queue_usage(q);
      const SimTime span = usage.busy + usage.idle;
      queues.AddRow({std::to_string(q), Table::Num(usage.busy.us(), 1),
                     Table::Num(usage.idle.us(), 1),
                     Table::Pct(span > kSimTimeZero
                                    ? usage.busy.seconds() / span.seconds()
                                    : 0.0)});
    }
    queues.Print();
    if (!rt.channel_stall().empty()) {
      std::printf("\n");
      Table stalls({"Channel", "Stall us"});
      for (const auto& [chan, t] : rt.channel_stall()) {
        stalls.AddRow({chan, Table::Num(t.us(), 1)});
      }
      stalls.Print();
    }

    obs::Registry runtime_registry;
    d.ExportRuntimeMetrics(runtime_registry);
    if (dse) dse->ExportMetrics(runtime_registry);
    runtime_registry.gauge("perf.fps").Set(fps);
    runtime_registry.gauge("perf.ref.tf_cpu_fps")
        .Set(perfmodel::TensorflowCpuFps(net));
    runtime_registry.gauge("perf.ref.tvm4_fps")
        .Set(perfmodel::TvmCpuFps(net, 4));
    runtime_registry.gauge("perf.ref.tf_gpu_fps")
        .Set(perfmodel::TensorflowGpuFps(net));
    runtime_registry.gauge("perf.speedup_vs_tf_cpu")
        .Set(fps / perfmodel::TensorflowCpuFps(net));
    std::printf("\n--- runtime & perfmodel metrics ---\n");
    runtime_registry.SummaryTable().Print();

    WriteFile(base + "_metrics.json",
              "{\"compile\":" + d.telemetry().registry.ToJson() +
                  ",\"runtime\":" + runtime_registry.ToJson() +
                  ",\"diagnostics\":" + d.diagnostics().ToJson() + "}");
  }

  if (profile) {
    prof::ProfileOptions popts;
    const prof::Profile p = prof::BuildProfile(d, image, popts);
    prof::EmitDiagnostics(p, d.diagnostics(), popts);
    std::printf("\n%s", prof::ToText(p).c_str());
    if (!d.diagnostics().diagnostics().empty()) {
      std::printf("\n--- profiler diagnostics ---\n");
      d.diagnostics().SummaryTable().Print();
    }
    WriteFile(base + "_profile.txt", prof::ToText(p));
    WriteFile(base + "_profile.json", prof::ToJson(p));
    WriteFile(base + "_profile.html", prof::ToHtml(p));
  }

  if (monitor) {
    // A batch of timing requests through the SLO monitor. The simulated
    // clock is deterministic, so a healthy deployment shows zero
    // violations against a budget 5% above the first request; faults and
    // fmax droop push requests over it and burn the error budget.
    telemetry::SloSpec spec;
    spec.latency_objective_us = run.latency.us() * 1.05;
    spec.window = 16;
    telemetry::SloMonitor slo(spec);
    auto& rt = d.runtime();
    constexpr int kRequests = 24;
    for (int i = 0; i < kRequests; ++i) {
      const auto r = d.Run(image, /*functional=*/false);
      slo.ObserveRequest(ocl::SummarizeRequest(rt.event_pool(), r.trace_id),
                         &d.diagnostics());
    }
    std::printf("\n--- SLO monitor (%d requests) ---\n%s", kRequests,
                slo.ToText().c_str());
    obs::Registry reg;
    slo.ExportMetrics(reg);
    d.ExportRuntimeMetrics(reg);
    if (dse) dse->ExportMetrics(reg);
    WriteFile(base + "_monitor.json", slo.ToJson());
    WriteFile(base + "_metrics.prom", reg.ToPrometheus());
  }

  if (!trace_out.empty()) {
    WriteFile(trace_out,
              ocl::ExportChromeTrace(d.runtime().event_pool(),
                                     d.telemetry().tracer.spans(),
                                     net.name() + "@" + board_key));
  }
  return 0;
}
