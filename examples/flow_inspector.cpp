// Flow inspector: compiles a network for a board and writes every
// artifact the real flow would produce -- the OpenCL kernels (.cl), the
// custom host program (SS5.2), and the fit report -- so the whole
// compilation can be inspected file by file.
//
// usage: example_flow_inspector [lenet|mobilenet|resnet18|resnet34]
//                               [a10|s10sx|s10mx] [pipelined|folded]
//                               [outdir]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/dse.hpp"
#include "core/host_codegen.hpp"
#include "fpga/report.hpp"
#include "nets/nets.hpp"

namespace {

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  out << contents;
  std::printf("wrote %-28s (%zu bytes)\n", path.c_str(), contents.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace clflow;
  const std::string net_name = argc > 1 ? argv[1] : "lenet";
  const std::string board_key = argc > 2 ? argv[2] : "s10sx";
  const std::string mode_name = argc > 3 ? argv[3] : "";
  const std::string outdir = argc > 4 ? argv[4] : ".";

  Rng rng(17);
  graph::Graph net;
  if (net_name == "lenet") {
    net = nets::BuildLeNet5(rng);
  } else if (net_name == "mobilenet") {
    net = nets::BuildMobileNetV1(rng);
  } else if (net_name == "resnet18") {
    net = nets::BuildResNet(18, rng);
  } else if (net_name == "resnet34") {
    net = nets::BuildResNet(34, rng);
  } else {
    std::fprintf(stderr, "unknown network %s\n", net_name.c_str());
    return 1;
  }

  core::DeployOptions opts;
  opts.board = fpga::BoardByKey(board_key);
  const bool pipelined =
      mode_name.empty() ? net_name == "lenet" : mode_name == "pipelined";
  if (pipelined) {
    opts.mode = core::ExecutionMode::kPipelined;
    opts.recipe = core::PipelineTvmAutorun();
    opts.recipe.concurrent_execution = true;
  } else {
    opts.mode = core::ExecutionMode::kFolded;
    if (net_name == "mobilenet") {
      opts.recipe = core::FoldedMobileNet(board_key);
    } else if (net_name == "lenet") {
      opts.recipe = core::FoldedBase();
    } else {
      opts.recipe = core::FoldedResNet();
    }
  }

  std::printf("compiling %s for %s (%s)...\n", net.name().c_str(),
              opts.board.name.c_str(), pipelined ? "pipelined" : "folded");
  auto d = core::Deployment::Compile(net, opts);

  const std::string base = outdir + "/" + net.name() + "_" + board_key;
  WriteFile(base + "_fit_report.txt", fpga::WriteFitReport(d.bitstream()));
  if (!d.ok()) {
    std::printf("design does not synthesize: %s\n",
                d.bitstream().status_detail.c_str());
    return 0;
  }
  WriteFile(base + ".cl", d.GeneratedSource());
  WriteFile(base + "_host.cpp", core::EmitHostProgram(d));
  WriteFile(base + "_graph.txt", d.fused_graph().ToString());

  std::printf("\nfmax %.0f MHz, %zu kernels, %zu invocations/pass\n",
              d.bitstream().fmax_mhz, d.kernels().size(),
              d.invocations().size());
  return 0;
}
