// Building a custom operator kernel with the schedule primitives -- the
// workflow the paper argues is the flow's key advantage over
// template-based accelerators (SS3.1): supporting a new operation means
// writing its compute definition and optimizing its schedule, not
// designing hardware.
//
// We hand-build a "leaky-relu + scale" kernel at the IR level, optimize
// it with the generic passes (split + unroll + cached writes), check
// semantics with the interpreter, synthesize it for the Arria 10, and
// print the generated OpenCL.
#include <cstdio>
#include <vector>

#include "codegen/opencl_codegen.hpp"
#include "fpga/synth.hpp"
#include "ir/interp.hpp"
#include "common/rng.hpp"
#include "ir/passes.hpp"

int main() {
  using namespace clflow;
  using namespace clflow::ir;

  constexpr std::int64_t kN = 4096;

  // --- 1. Compute definition: y[i] = (x[i] > 0 ? x[i] : 0.1*x[i]) * s[0].
  auto x = MakeBuffer("x", {IntImm(kN)}, MemScope::kGlobal, true);
  auto scale = MakeBuffer("scale", {IntImm(1)}, MemScope::kGlobal, true);
  auto y = MakeBuffer("y", {IntImm(kN)}, MemScope::kGlobal, true);
  auto i = MakeVar("i");

  Expr xi = Load(x, {VarRef(i)});
  Expr leaky = Select(Binary(BinOp::kGe, xi, FloatImm(0.0)), xi,
                      Mul(FloatImm(0.1), xi));
  Stmt body = Store(y, {VarRef(i)}, Mul(leaky, Load(scale, {IntImm(0)})));

  Kernel kernel;
  kernel.name = "leaky_relu_scale";
  kernel.buffer_args = {x, scale, y};
  kernel.body = For(i, IntImm(0), IntImm(kN), body);
  kernel.Validate();

  // --- 2. Schedule: strip-mine by 16 and vectorize the inner loop
  //        (paper SS4.1/SS4.2), exactly as a TOPI schedule would.
  kernel.body = SplitLoop(kernel.body, "i", 16, /*vectorize_inner=*/true);

  const auto stats = AnalyzeKernel(kernel);
  std::printf("scheduled kernel: %.0f cycles/invocation, %lld-wide unroll, "
              "II=%lld\n",
              stats.compute_cycles, (long long)stats.fp_mul_spatial,
              (long long)stats.worst_ii);

  // --- 3. Verify semantics with the interpreter.
  std::vector<float> vx(kN), vs{2.0f}, vy(kN, -1.0f);
  Rng rng(3);
  for (auto& v : vx) v = rng.Uniform(-1.0f, 1.0f);
  InterpEnv env;
  env.BindBuffer(x, vx);
  env.BindBuffer(scale, vs);
  env.BindBuffer(y, vy);
  RunKernel(kernel, env);
  int errors = 0;
  for (std::int64_t k = 0; k < kN; ++k) {
    const float e = (vx[k] >= 0 ? vx[k] : 0.1f * vx[k]) * 2.0f;
    if (std::abs(vy[k] - e) > 1e-6f) ++errors;
  }
  std::printf("interpreter check: %d mismatches out of %lld elements\n",
              errors, (long long)kN);

  // --- 4. Synthesize for the Arria 10 and report the design.
  auto bitstream = fpga::Synthesize({{&kernel, {}}}, fpga::Arria10());
  std::printf("synthesis: %s, fmax %.0f MHz, %lld ALUTs, %lld DSPs, "
              "%lld LSUs\n",
              std::string(fpga::SynthStatusName(bitstream.status)).c_str(),
              bitstream.fmax_mhz, (long long)bitstream.totals.aluts,
              (long long)bitstream.totals.dsps,
              (long long)bitstream.kernels[0].lsu_count);
  const auto t = fpga::InvocationTime(stats, fpga::Arria10(),
                                      bitstream.fmax_mhz);
  std::printf("one invocation over %lld elements: %.2f us simulated\n\n",
              (long long)kN, t.us());

  // --- 5. Show the OpenCL that would go to AOC.
  std::printf("%s", codegen::EmitKernel(kernel).c_str());
  return errors == 0 ? 0 : 1;
}
